//! The server fleet state machine.
//!
//! Each of the at most `k` servers is *not in use*, *inactive*, or *active*
//! (§II-C). Active servers are tracked as the set of nodes hosting them;
//! inactive servers live in a FIFO queue of constant capacity ("size 3 in
//! our simulations") whose entries expire after a configurable number of
//! epochs ("x = 20 in our simulation"). Servers falling out of the queue —
//! by eviction or expiry — are no longer in use.

use std::collections::VecDeque;

use flexserve_graph::NodeId;

use crate::params::CostParams;

/// One cached inactive server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InactiveServer {
    /// Node hosting the inactive server.
    pub node: NodeId,
    /// Epoch index at which this entry expires (exclusive: the server is
    /// dropped once the fleet's epoch reaches this value).
    pub expires_epoch: u64,
}

/// The fleet: active servers + the FIFO cache of inactive servers.
#[derive(Clone, Debug)]
pub struct Fleet {
    active: Vec<NodeId>,
    /// Front = oldest (first to be replaced, per the paper).
    inactive: VecDeque<InactiveServer>,
    epoch: u64,
    queue_cap: usize,
    expiry_epochs: u64,
    max_servers: usize,
}

impl Fleet {
    /// Creates a fleet with the given initially *active* servers (no
    /// creation cost is charged for the initial configuration `γ0`) and the
    /// queue parameters from `params`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_active` contains duplicates or exceeds
    /// `params.max_servers`.
    pub fn new(mut initial_active: Vec<NodeId>, params: &CostParams) -> Self {
        initial_active.sort();
        let before = initial_active.len();
        initial_active.dedup();
        assert_eq!(before, initial_active.len(), "duplicate initial servers");
        assert!(
            initial_active.len() <= params.max_servers,
            "initial fleet exceeds max_servers"
        );
        Fleet {
            active: initial_active,
            inactive: VecDeque::new(),
            epoch: 0,
            queue_cap: params.inactive_queue_len,
            expiry_epochs: params.inactive_expiry_epochs,
            max_servers: params.max_servers,
        }
    }

    /// Reconstructs a fleet from checkpointed state: the active set, the
    /// inactive queue (oldest first, with absolute expiry epochs) and the
    /// epoch counter. Validates the same invariants [`Fleet::new`] and the
    /// queue discipline maintain, so a hand-edited or corrupted checkpoint
    /// is rejected instead of resumed into an unreachable state.
    pub fn from_parts(
        mut active: Vec<NodeId>,
        inactive: Vec<InactiveServer>,
        epoch: u64,
        params: &CostParams,
    ) -> Result<Self, String> {
        active.sort();
        let before = active.len();
        active.dedup();
        if active.len() != before {
            return Err("fleet: duplicate active servers".into());
        }
        if inactive.len() > params.inactive_queue_len {
            return Err(format!(
                "fleet: {} inactive servers exceed the queue capacity {}",
                inactive.len(),
                params.inactive_queue_len
            ));
        }
        if active.len() + inactive.len() > params.max_servers {
            return Err(format!(
                "fleet: {} servers exceed the k={} budget",
                active.len() + inactive.len(),
                params.max_servers
            ));
        }
        for (i, s) in inactive.iter().enumerate() {
            if active.binary_search(&s.node).is_ok() {
                return Err(format!(
                    "fleet: node {} is both active and inactive",
                    s.node
                ));
            }
            if inactive[..i].iter().any(|prev| prev.node == s.node) {
                return Err(format!("fleet: duplicate inactive server at {}", s.node));
            }
            if s.expires_epoch <= epoch {
                return Err(format!(
                    "fleet: inactive server at {} already expired (epoch {epoch})",
                    s.node
                ));
            }
        }
        Ok(Fleet {
            active,
            inactive: inactive.into(),
            epoch,
            queue_cap: params.inactive_queue_len,
            expiry_epochs: params.inactive_expiry_epochs,
            max_servers: params.max_servers,
        })
    }

    /// Sorted slice of nodes hosting active servers.
    #[inline]
    pub fn active(&self) -> &[NodeId] {
        &self.active
    }

    /// Nodes hosting inactive servers, oldest first.
    pub fn inactive_nodes(&self) -> Vec<NodeId> {
        self.inactive.iter().map(|s| s.node).collect()
    }

    /// The inactive queue entries, oldest first.
    pub fn inactive_entries(&self) -> impl Iterator<Item = &InactiveServer> {
        self.inactive.iter()
    }

    /// Number of active servers (`k_cur` in the paper's ONTH condition).
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of cached inactive servers.
    #[inline]
    pub fn inactive_count(&self) -> usize {
        self.inactive.len()
    }

    /// Total servers in use (active + inactive) — bounded by `k`.
    #[inline]
    pub fn total_count(&self) -> usize {
        self.active.len() + self.inactive.len()
    }

    /// The configured maximum number of servers `k`.
    #[inline]
    pub fn max_servers(&self) -> usize {
        self.max_servers
    }

    /// Current epoch index (drives inactive expiry).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether an active server sits on `node`.
    #[inline]
    pub fn is_active_at(&self, node: NodeId) -> bool {
        self.active.binary_search(&node).is_ok()
    }

    /// Whether an inactive server sits on `node`.
    pub fn is_inactive_at(&self, node: NodeId) -> bool {
        self.inactive.iter().any(|s| s.node == node)
    }

    /// Advances the epoch counter and expires stale inactive servers.
    /// Returns the nodes whose cached servers expired.
    pub fn advance_epoch(&mut self) -> Vec<NodeId> {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut expired = Vec::new();
        self.inactive.retain(|s| {
            if s.expires_epoch <= epoch {
                expired.push(s.node);
                false
            } else {
                true
            }
        });
        expired
    }

    // ------------------------------------------------------------------
    // Primitive mutations used by the transition planner. They maintain the
    // sorted-active invariant and the queue discipline but do not price
    // anything.
    // ------------------------------------------------------------------

    /// Adds an active server at `node`.
    ///
    /// # Panics
    ///
    /// Panics if a server (active) is already there or the `k` budget would
    /// be exceeded *after* accounting for possible queue evictions — the
    /// planner calls [`Fleet::make_room`] first.
    pub(crate) fn push_active(&mut self, node: NodeId) {
        match self.active.binary_search(&node) {
            Ok(_) => panic!("push_active: server already active at {node}"),
            Err(pos) => self.active.insert(pos, node),
        }
        assert!(
            self.total_count() <= self.max_servers,
            "fleet exceeded max_servers"
        );
    }

    /// Removes the active server at `node`; returns whether one was there.
    pub(crate) fn remove_active(&mut self, node: NodeId) -> bool {
        match self.active.binary_search(&node) {
            Ok(pos) => {
                self.active.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Moves the active server at `node` into the inactive queue (the
    /// paper's free deactivation). If the queue is full the *oldest* cached
    /// server falls out of use; its node is returned.
    pub(crate) fn deactivate(&mut self, node: NodeId) -> Option<NodeId> {
        assert!(self.remove_active(node), "deactivate: no active at {node}");
        let mut evicted = None;
        if self.queue_cap == 0 {
            return Some(node);
        }
        if self.inactive.len() == self.queue_cap {
            evicted = self.inactive.pop_front().map(|s| s.node);
        }
        self.inactive.push_back(InactiveServer {
            node,
            expires_epoch: self.epoch + self.expiry_epochs,
        });
        evicted
    }

    /// Removes the cached inactive server at `node` (activation in place or
    /// migration source); returns whether one was there.
    pub(crate) fn take_inactive_at(&mut self, node: NodeId) -> bool {
        if let Some(pos) = self.inactive.iter().position(|s| s.node == node) {
            self.inactive.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes and returns the *oldest* cached inactive server.
    pub(crate) fn take_oldest_inactive(&mut self) -> Option<NodeId> {
        self.inactive.pop_front().map(|s| s.node)
    }

    /// Evicts oldest inactive servers until `total_count() + incoming` fits
    /// the `k` budget. Returns the evicted nodes.
    pub(crate) fn make_room(&mut self, incoming: usize) -> Vec<NodeId> {
        let mut evicted = Vec::new();
        while self.total_count() + incoming > self.max_servers {
            match self.inactive.pop_front() {
                Some(s) => evicted.push(s.node),
                None => panic!(
                    "make_room: cannot fit {incoming} more servers (active {} / k {})",
                    self.active.len(),
                    self.max_servers
                ),
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(queue: usize, expiry: u64, k: usize) -> CostParams {
        CostParams {
            inactive_queue_len: queue,
            inactive_expiry_epochs: expiry,
            max_servers: k,
            ..CostParams::default()
        }
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn initial_state() {
        let f = Fleet::new(vec![n(3), n(1)], &params(3, 20, 8));
        assert_eq!(f.active(), &[n(1), n(3)]);
        assert_eq!(f.active_count(), 2);
        assert_eq!(f.inactive_count(), 0);
        assert!(f.is_active_at(n(1)));
        assert!(!f.is_active_at(n(2)));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_initial_rejected() {
        Fleet::new(vec![n(1), n(1)], &params(3, 20, 8));
    }

    #[test]
    fn deactivation_enters_fifo_queue() {
        let mut f = Fleet::new(vec![n(0), n(1), n(2), n(3)], &params(2, 20, 8));
        assert_eq!(f.deactivate(n(0)), None);
        assert_eq!(f.deactivate(n(1)), None);
        // queue full (cap 2): deactivating n2 evicts the oldest (n0)
        assert_eq!(f.deactivate(n(2)), Some(n(0)));
        assert_eq!(f.inactive_nodes(), vec![n(1), n(2)]);
        assert_eq!(f.active(), &[n(3)]);
    }

    #[test]
    fn zero_capacity_queue_drops_immediately() {
        let mut f = Fleet::new(vec![n(0), n(1)], &params(0, 20, 8));
        assert_eq!(f.deactivate(n(0)), Some(n(0)));
        assert_eq!(f.inactive_count(), 0);
    }

    #[test]
    fn expiry_after_epochs() {
        let mut f = Fleet::new(vec![n(0), n(1)], &params(3, 2, 8));
        f.deactivate(n(0));
        assert_eq!(f.advance_epoch(), Vec::<NodeId>::new()); // epoch 1
        assert_eq!(f.advance_epoch(), vec![n(0)]); // epoch 2: expired
        assert_eq!(f.inactive_count(), 0);
    }

    #[test]
    fn take_inactive() {
        let mut f = Fleet::new(vec![n(0), n(1), n(2)], &params(3, 20, 8));
        f.deactivate(n(0));
        f.deactivate(n(1));
        assert!(f.take_inactive_at(n(1)));
        assert!(!f.take_inactive_at(n(1)));
        assert_eq!(f.take_oldest_inactive(), Some(n(0)));
        assert_eq!(f.take_oldest_inactive(), None);
    }

    #[test]
    fn make_room_evicts_oldest() {
        let mut f = Fleet::new(vec![n(0), n(1), n(2)], &params(3, 20, 4));
        f.deactivate(n(0)); // active 2, inactive 1, total 3
        let evicted = f.make_room(2); // need total+2 <= 4 -> evict 1
        assert_eq!(evicted, vec![n(0)]);
        assert_eq!(f.total_count(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn make_room_panics_when_actives_exceed() {
        let mut f = Fleet::new(vec![n(0), n(1)], &params(3, 20, 2));
        f.make_room(1);
    }

    #[test]
    fn push_and_remove_active_keep_sorted() {
        let mut f = Fleet::new(vec![n(5)], &params(3, 20, 8));
        f.push_active(n(2));
        f.push_active(n(9));
        assert_eq!(f.active(), &[n(2), n(5), n(9)]);
        assert!(f.remove_active(n(5)));
        assert!(!f.remove_active(n(5)));
        assert_eq!(f.active(), &[n(2), n(9)]);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_push_panics() {
        let mut f = Fleet::new(vec![n(1)], &params(3, 20, 8));
        f.push_active(n(1));
    }

    #[test]
    fn from_parts_round_trips_live_state() {
        let p = params(3, 20, 8);
        let mut f = Fleet::new(vec![n(0), n(1), n(4)], &p);
        f.deactivate(n(1));
        f.advance_epoch();
        let rebuilt = Fleet::from_parts(
            f.active().to_vec(),
            f.inactive_entries().copied().collect(),
            f.epoch(),
            &p,
        )
        .unwrap();
        assert_eq!(rebuilt.active(), f.active());
        assert_eq!(rebuilt.inactive_nodes(), f.inactive_nodes());
        assert_eq!(rebuilt.epoch(), f.epoch());
        // the queue discipline continues identically
        let mut a = f.clone();
        let mut b = rebuilt;
        assert_eq!(a.advance_epoch(), b.advance_epoch());
        assert_eq!(a.deactivate(n(0)), b.deactivate(n(0)));
    }

    #[test]
    fn from_parts_rejects_corrupt_state() {
        let p = params(2, 20, 4);
        let inact = |node: usize, exp: u64| InactiveServer {
            node: n(node),
            expires_epoch: exp,
        };
        // duplicate actives
        assert!(Fleet::from_parts(vec![n(1), n(1)], vec![], 0, &p).is_err());
        // queue over capacity
        assert!(Fleet::from_parts(
            vec![n(0)],
            vec![inact(1, 9), inact(2, 9), inact(3, 9)],
            0,
            &p
        )
        .is_err());
        // over the k budget
        let p1 = params(3, 20, 2);
        assert!(Fleet::from_parts(vec![n(0), n(1)], vec![inact(2, 9)], 0, &p1).is_err());
        // node both active and inactive
        assert!(Fleet::from_parts(vec![n(0)], vec![inact(0, 9)], 0, &p).is_err());
        // duplicate inactive entries
        assert!(Fleet::from_parts(vec![n(0)], vec![inact(1, 9), inact(1, 8)], 0, &p).is_err());
        // already-expired cache entry
        assert!(Fleet::from_parts(vec![n(0)], vec![inact(1, 3)], 5, &p).is_err());
    }
}
