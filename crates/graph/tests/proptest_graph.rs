//! Property-based tests for the graph substrate.
//!
//! Invariants checked:
//! * Dijkstra == Floyd–Warshall on arbitrary random graphs,
//! * distance matrices are symmetric and satisfy the triangle inequality,
//! * generator structural invariants hold for arbitrary parameters,
//! * the connectivity repair always yields connected graphs.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use flexserve_graph::connectivity::{component_count, is_connected};
use flexserve_graph::gen::{erdos_renyi, grid, line, random_tree, ring, star, GenConfig};
use flexserve_graph::path::shortest_paths;
use flexserve_graph::{DistanceMatrix, EdgeUpdate, Graph, NodeId};

/// Builds a random graph directly from proptest-chosen edge list.
fn graph_from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_node(1.0);
    }
    for &(a, b, lat) in edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let _ = g.add_edge(
            NodeId::new(a),
            NodeId::new(b),
            lat,
            flexserve_graph::Bandwidth::T1,
        );
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_floyd_warshall(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20, 0.0f64..100.0), 0..60)
    ) {
        let g = graph_from_edges(n, &edges);
        let fast = DistanceMatrix::build(&g);
        let slow = DistanceMatrix::build_floyd_warshall(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let (a, b) = (fast.get(u, v), slow.get(u, v));
                if a.is_finite() || b.is_finite() {
                    prop_assert!((a - b).abs() < 1e-9, "({u},{v}): {a} vs {b}");
                }
            }
        }
    }

    /// The rayon-parallel APSP build must be *bit-identical* to the serial
    /// CSR reference on arbitrary graphs — not merely approximately equal:
    /// parallelism only changes which thread computes a row, never the
    /// arithmetic within it.
    #[test]
    fn parallel_apsp_equals_serial_on_random_graphs(
        n in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40, 0.0f64..100.0), 0..120)
    ) {
        let g = graph_from_edges(n, &edges);
        let par = DistanceMatrix::build(&g);
        let ser = DistanceMatrix::build_serial(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    par.get(u, v).to_bits(),
                    ser.get(u, v).to_bits(),
                    "({},{}): {} vs {}", u, v, par.get(u, v), ser.get(u, v)
                );
            }
        }
    }

    /// Incremental APSP repair must be *bit-identical* to a full rebuild
    /// after every event of an arbitrary edge-event sequence: failures
    /// (latency -> INFINITY), recoveries (back to the original latency)
    /// and degradations (latency scaled), on arbitrary topologies.
    #[test]
    fn apsp_repair_equals_rebuild_on_random_event_sequences(
        n in 2usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30, 0.1f64..100.0), 1..90),
        events in prop::collection::vec((0usize..64, 0usize..3, 1.1f64..4.0), 1..12)
    ) {
        let mut g = graph_from_edges(n, &edges);
        if g.edge_count() == 0 {
            return;
        }
        let mut m = DistanceMatrix::build(&g);
        let all_edges: Vec<(NodeId, NodeId, f64)> = g
            .edges()
            .map(|e| (e.source, e.target, e.latency))
            .collect();
        for &(pick, kind, factor) in &events {
            let (a, b, original) = all_edges[pick % all_edges.len()];
            let old = g.edge_latency(a, b).unwrap();
            let new = match kind {
                0 => f64::INFINITY,     // fail
                1 => original,          // recover to the pristine latency
                _ => {
                    if old.is_finite() { old * factor } else { old } // degrade
                }
            };
            g.set_edge_latency(a, b, new).unwrap();
            m.repair(&g, &[EdgeUpdate { a, b, old_latency: old, new_latency: new }]);
            let rebuilt = DistanceMatrix::build(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    prop_assert_eq!(
                        m.get(u, v).to_bits(),
                        rebuilt.get(u, v).to_bits(),
                        "event ({},{},{}): ({},{}): {} vs {}",
                        pick, kind, factor, u, v, m.get(u, v), rebuilt.get(u, v)
                    );
                }
            }
        }
    }

    /// Batched repair (several edges changed at once, as a node failure
    /// produces) is bit-identical to a rebuild too.
    #[test]
    fn apsp_repair_equals_rebuild_on_batched_node_events(
        n in 3usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25, 0.1f64..50.0), 2..70),
        victim in 0usize..25,
    ) {
        let mut g = graph_from_edges(n, &edges);
        let victim = NodeId::new(victim % n);
        if g.degree(victim) == 0 {
            return;
        }
        let mut m = DistanceMatrix::build(&g);
        let incident: Vec<(NodeId, f64)> = g
            .neighbors(victim)
            .map(|e| (e.target, e.latency))
            .collect();
        // Node failure: every incident link fails in one batch.
        let fail: Vec<EdgeUpdate> = incident
            .iter()
            .map(|&(w, lat)| EdgeUpdate {
                a: victim,
                b: w,
                old_latency: lat,
                new_latency: f64::INFINITY,
            })
            .collect();
        for up in &fail {
            g.set_edge_latency(up.a, up.b, f64::INFINITY).unwrap();
        }
        m.repair(&g, &fail);
        let rebuilt = DistanceMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(m.get(u, v).to_bits(), rebuilt.get(u, v).to_bits());
            }
        }
        // Node recovery restores the pristine matrix bit for bit.
        let recover: Vec<EdgeUpdate> = incident
            .iter()
            .map(|&(w, lat)| EdgeUpdate {
                a: victim,
                b: w,
                old_latency: f64::INFINITY,
                new_latency: lat,
            })
            .collect();
        for up in &recover {
            g.set_edge_latency(up.a, up.b, up.new_latency).unwrap();
        }
        m.repair(&g, &recover);
        let pristine = DistanceMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(m.get(u, v).to_bits(), pristine.get(u, v).to_bits());
            }
        }
    }

    #[test]
    fn distance_matrix_symmetric_and_triangle(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15, 0.0f64..50.0), 0..40)
    ) {
        let g = graph_from_edges(n, &edges);
        let m = DistanceMatrix::build(&g);
        for u in g.nodes() {
            prop_assert_eq!(m.get(u, u), 0.0);
            for v in g.nodes() {
                let (duv, dvu) = (m.get(u, v), m.get(v, u));
                if duv.is_finite() || dvu.is_finite() {
                    prop_assert!((duv - dvu).abs() < 1e-9);
                }
                for w in g.nodes() {
                    if m.get(u, v).is_finite() && m.get(v, w).is_finite() {
                        prop_assert!(m.get(u, w) <= m.get(u, v) + m.get(v, w) + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_consistency(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15, 0.1f64..50.0), 1..40),
        src in 0usize..15,
    ) {
        let g = graph_from_edges(n, &edges);
        let src = NodeId::new(src % n);
        let sp = shortest_paths(&g, src);
        for v in g.nodes() {
            if let Some(path) = sp.path_to(v) {
                prop_assert_eq!(path[0], src);
                prop_assert_eq!(*path.last().unwrap(), v);
                // path edge sum equals reported distance
                let mut sum = 0.0;
                for w in path.windows(2) {
                    let lat = g.edge_latency(w[0], w[1]);
                    prop_assert!(lat.is_some(), "path uses a non-edge");
                    sum += lat.unwrap();
                }
                prop_assert!((sum - sp.distance(v).unwrap()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn erdos_renyi_always_connected(n in 1usize..120, p in 0.0f64..0.2, seed in 0u64..1000) {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &cfg, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn line_is_path(n in 1usize..50, seed in 0u64..100) {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = line(n, &cfg, &mut rng).unwrap();
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn tree_has_n_minus_one_edges(n in 1usize..80, seed in 0u64..100) {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_tree(n, &cfg, &mut rng).unwrap();
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn ring_degrees(n in 3usize..60, seed in 0u64..100) {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = ring(n, &cfg, &mut rng).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn star_shape(n in 1usize..60, seed in 0u64..100) {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = star(n, &cfg, &mut rng).unwrap();
        prop_assert_eq!(g.edge_count(), n - 1);
        if n > 1 {
            prop_assert_eq!(g.degree(NodeId::new(0)), n - 1);
        }
    }

    #[test]
    fn grid_shape(r in 1usize..8, c in 1usize..8, seed in 0u64..100) {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = grid(r, c, &cfg, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), r * c);
        prop_assert_eq!(g.edge_count(), r * (c - 1) + (r - 1) * c);
        prop_assert!(is_connected(&g));
    }
}
