//! Physical units attached to substrate nodes and links.
//!
//! The paper characterizes a node by its *strength* `ω(v)` and a link by a
//! *bandwidth capacity* `ω(e)` and a *latency* `λ(e)`. The simulations assign
//! link bandwidths at random as either T1 (1.544 Mbit/s) or T2
//! (6.312 Mbit/s) lines.

use std::fmt;

/// Link latency in milliseconds.
///
/// A plain `f64` alias kept as its own name for documentation purposes;
/// all cost arithmetic in the higher layers is performed in `f64`.
pub type Latency = f64;

/// Node strength `ω(v)` — an abstract capacity figure (CPU cores, memory
/// size, bus speed, ...). Larger is stronger; the load a node experiences
/// for a given number of requests decreases with its strength.
pub type Strength = f64;

/// Link bandwidth capacity `ω(e)`.
///
/// The paper's simulation set-up: "link bandwidths are chosen at random
/// (either T1 (1.544 Mbit/s) or T2 (6.312 Mbit/s))". The simplified cost
/// model charges a constant `β` per migration, so bandwidth does not enter
/// the headline cost numbers, but it is carried through the substrate so
/// extensions (e.g. bandwidth-dependent migration duration, documented in
/// docs/DESIGN.md) can use it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Bandwidth {
    /// A T1 line: 1.544 Mbit/s.
    T1,
    /// A T2 line: 6.312 Mbit/s.
    T2,
    /// Arbitrary capacity in Mbit/s (used by the Rocketfuel-like topology
    /// where backbone links are much fatter than access links).
    Custom(f64),
}

impl Bandwidth {
    /// Capacity in Mbit/s.
    #[inline]
    pub fn mbps(self) -> f64 {
        match self {
            Bandwidth::T1 => 1.544,
            Bandwidth::T2 => 6.312,
            Bandwidth::Custom(v) => v,
        }
    }

    /// Time (in milliseconds) to transfer `megabits` over this link,
    /// ignoring propagation. Used by the ablation bench that models
    /// bandwidth-dependent migration cost.
    #[inline]
    pub fn transfer_ms(self, megabits: f64) -> f64 {
        (megabits / self.mbps()) * 1000.0
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bandwidth::T1 => write!(f, "T1(1.544 Mbit/s)"),
            Bandwidth::T2 => write!(f, "T2(6.312 Mbit/s)"),
            Bandwidth::Custom(v) => write!(f, "{v} Mbit/s"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_t2_capacities_match_paper() {
        assert!((Bandwidth::T1.mbps() - 1.544).abs() < 1e-12);
        assert!((Bandwidth::T2.mbps() - 6.312).abs() < 1e-12);
    }

    #[test]
    fn custom_capacity() {
        assert_eq!(Bandwidth::Custom(100.0).mbps(), 100.0);
    }

    #[test]
    fn transfer_time_scales_inversely_with_bandwidth() {
        let t1 = Bandwidth::T1.transfer_ms(10.0);
        let t2 = Bandwidth::T2.transfer_ms(10.0);
        assert!(t1 > t2);
        // T2 is ~4.09x faster than T1.
        assert!((t1 / t2 - 6.312 / 1.544).abs() < 1e-9);
    }

    #[test]
    fn display_is_human_readable() {
        assert!(format!("{}", Bandwidth::T1).contains("T1"));
        assert!(format!("{}", Bandwidth::Custom(2.0)).contains("2 Mbit/s"));
    }
}
