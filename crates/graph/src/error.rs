//! Error types for graph construction and queries.

use std::fmt;

use crate::ids::NodeId;

/// Errors produced while building or querying a substrate graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An endpoint passed to `add_edge` (or a query) does not exist.
    UnknownNode(NodeId),
    /// Self-loops are not allowed in the substrate model.
    SelfLoop(NodeId),
    /// The two nodes are already connected; the substrate is a simple graph.
    DuplicateEdge(NodeId, NodeId),
    /// No edge exists between the two nodes (latency mutation target).
    UnknownEdge(NodeId, NodeId),
    /// A latency must be non-negative and finite.
    InvalidLatency(f64),
    /// A node strength must be strictly positive and finite (the load
    /// function divides by it).
    InvalidStrength(f64),
    /// A generator was asked for an impossible topology
    /// (e.g. a line graph with zero nodes).
    InvalidGeneratorArgs(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop at node {n} is not allowed"),
            GraphError::DuplicateEdge(a, b) => {
                write!(f, "edge between {a} and {b} already exists")
            }
            GraphError::UnknownEdge(a, b) => {
                write!(f, "no edge between {a} and {b}")
            }
            GraphError::InvalidLatency(l) => {
                write!(f, "invalid latency {l}: must be finite and >= 0")
            }
            GraphError::InvalidStrength(s) => {
                write!(f, "invalid node strength {s}: must be finite and > 0")
            }
            GraphError::InvalidGeneratorArgs(msg) => write!(f, "invalid generator args: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offender() {
        let e = GraphError::UnknownNode(NodeId::new(3));
        assert!(e.to_string().contains("n3"));
        let e = GraphError::InvalidLatency(-1.0);
        assert!(e.to_string().contains("-1"));
        let e = GraphError::DuplicateEdge(NodeId::new(0), NodeId::new(1));
        assert!(e.to_string().contains("n0"));
        assert!(e.to_string().contains("n1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::SelfLoop(NodeId::new(0)));
    }
}
