//! All-pairs shortest paths: the [`DistanceMatrix`].
//!
//! Every algorithm in the paper evaluates candidate server placements by
//! summing shortest-path latencies from access points — doing this naively
//! (one Dijkstra per query) dominates runtime. The simulation layers instead
//! precompute a dense distance matrix once per substrate; this module also
//! contains a reference Floyd–Warshall used by property tests to validate
//! the Dijkstra implementation.
//!
//! ## How `build` is fast
//!
//! Dijkstra sources are embarrassingly parallel, and [`DistanceMatrix::build`]
//! exploits the structure on three levels:
//!
//! 1. **CSR layout** — the graph is flattened once into a
//!    [`CsrAdjacency`] (offset/target/weight
//!    arrays), so each relaxation scans one contiguous `(targets, weights)`
//!    row instead of chasing `Vec<(NodeId, EdgeId)> → EdgeData` pointers.
//! 2. **Row-parallel execution** — the output matrix is split into
//!    contiguous row blocks handed to rayon workers
//!    (`par_chunks_mut`); every worker writes only its own rows, so there
//!    is no synchronization on the hot path.
//! 3. **Scratch reuse** — each worker allocates one
//!    [`DijkstraScratch`] (heap + settled
//!    flags) and reuses it for every source in its block: `O(threads)`
//!    allocations per build instead of `O(n)`.
//!
//! Each row is computed by the same code in the same order regardless of
//! thread count, so parallel and serial builds are **bit-identical**
//! ([`DistanceMatrix::build_serial`] is the single-thread reference, and a
//! property test pins `build == build_serial == build_floyd_warshall`).

use crate::csr::{dijkstra_into, CsrAdjacency, DijkstraScratch};
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::units::Latency;

use rayon::prelude::*;

/// Dense `n × n` matrix of shortest-path latencies.
///
/// Entry `(u, v)` is `f64::INFINITY` when `v` is unreachable from `u`.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

/// One edge-latency change for [`DistanceMatrix::repair`]: the edge
/// `{a, b}` went from `old_latency` to `new_latency`. A failed link is a
/// change *to* `f64::INFINITY`; a recovery is a change *from* it.
#[derive(Clone, Copy, Debug)]
pub struct EdgeUpdate {
    /// One endpoint of the changed edge.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Latency the matrix was built (or last repaired) against.
    pub old_latency: f64,
    /// Latency the graph now carries.
    pub new_latency: f64,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest paths by running Dijkstra from every node
    /// (`O(n · (m + n) log n)` work), which beats Floyd–Warshall on the
    /// sparse substrates used throughout the paper. Sources run in parallel
    /// over a CSR adjacency with per-thread scratch buffers (see the module
    /// docs); the result is bit-identical to [`DistanceMatrix::build_serial`].
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        if n == 0 {
            return DistanceMatrix {
                n,
                dist: Vec::new(),
            };
        }
        let csr = CsrAdjacency::from_graph(g);
        let mut dist = vec![f64::INFINITY; n * n];
        // One contiguous block of rows per worker; each worker reuses a
        // single scratch for all of its sources.
        let rows_per_block = n.div_ceil(rayon::current_num_threads());
        dist.par_chunks_mut(rows_per_block * n)
            .enumerate()
            .for_each(|(block, rows)| {
                let first = block * rows_per_block;
                let mut scratch = DijkstraScratch::new(n);
                for (i, row) in rows.chunks_mut(n).enumerate() {
                    dijkstra_into(&csr, first + i, row, &mut scratch);
                }
            });
        DistanceMatrix { n, dist }
    }

    /// Single-thread reference construction: the same CSR Dijkstra as
    /// [`DistanceMatrix::build`], run source-by-source on the calling
    /// thread. Exists for the perf harness (before/after comparison) and
    /// for tests asserting the parallel build is bit-identical.
    pub fn build_serial(g: &Graph) -> Self {
        let n = g.node_count();
        if n == 0 {
            return DistanceMatrix {
                n,
                dist: Vec::new(),
            };
        }
        let csr = CsrAdjacency::from_graph(g);
        let mut dist = vec![f64::INFINITY; n * n];
        let mut scratch = DijkstraScratch::new(n);
        for (u, row) in dist.chunks_mut(n).enumerate() {
            dijkstra_into(&csr, u, row, &mut scratch);
        }
        DistanceMatrix { n, dist }
    }

    /// Reference Floyd–Warshall construction, `O(n³)`. Exists so property
    /// tests can cross-validate [`DistanceMatrix::build`]; not used on hot
    /// paths.
    pub fn build_floyd_warshall(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            dist[i * n + i] = 0.0;
        }
        for e in g.edges() {
            let (u, v) = (e.source.index(), e.target.index());
            if e.latency < dist[u * n + v] {
                dist[u * n + v] = e.latency;
                dist[v * n + u] = e.latency;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                for j in 0..n {
                    let alt = dik + dist[k * n + j];
                    if alt < dist[i * n + j] {
                        dist[i * n + j] = alt;
                    }
                }
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Incrementally repairs the matrix after the edge-latency changes in
    /// `updates`, re-running Dijkstra **only from sources whose shortest
    /// paths can have changed**. `g` must already carry the new latencies;
    /// each update describes the transition from the matrix's current
    /// state to `g`'s. Returns the number of rows recomputed.
    ///
    /// A source `u` is *dirty* for an update `{a, b}: w_old -> w_new` when
    ///
    /// * the latency **increased** and the edge lay on a shortest path
    ///   from `u` (`dist(u,a) + w_old == dist(u,b)` or symmetrically —
    ///   exact float equality, because `dist(u,b)` was computed as that
    ///   very sum), or
    /// * the latency **decreased** and the cheaper edge offers an
    ///   improvement (`dist(u,a) + w_new < dist(u,b)` or symmetrically).
    ///
    /// Clean rows are provably unchanged — even for a batch mixing
    /// increases and decreases: a clean row's old shortest paths avoid
    /// every changed edge (any use would trip one of the two tests), and
    /// no changed edge offers it an improvement — so recomputing exactly
    /// the dirty rows with the same per-row Dijkstra as
    /// [`DistanceMatrix::build`] makes the repaired matrix **bit-identical**
    /// to a full rebuild (proptest-pinned in `tests/proptest_graph.rs`).
    /// Ties count as dirty, which is conservative but never wrong.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the matrix's or an update
    /// names an out-of-range node.
    pub fn repair(&mut self, g: &Graph, updates: &[EdgeUpdate]) -> usize {
        assert_eq!(
            self.n,
            g.node_count(),
            "DistanceMatrix::repair: graph size mismatch"
        );
        let n = self.n;
        if n == 0 || updates.is_empty() {
            return 0;
        }
        let mut dirty = vec![false; n];
        for (u, row) in self.dist.chunks(n).enumerate() {
            for up in updates {
                let (a, b) = (up.a.index(), up.b.index());
                assert!(
                    a < n && b < n,
                    "DistanceMatrix::repair: update endpoint out of range"
                );
                let (old_w, new_w) = (up.old_latency, up.new_latency);
                let hit = if new_w > old_w {
                    row[a] + old_w == row[b] || row[b] + old_w == row[a]
                } else if new_w < old_w {
                    row[a] + new_w < row[b] || row[b] + new_w < row[a]
                } else {
                    false
                };
                if hit {
                    dirty[u] = true;
                    break;
                }
            }
        }
        let repaired = dirty.iter().filter(|&&d| d).count();
        if repaired == 0 {
            return 0;
        }
        let csr = CsrAdjacency::from_graph(g);
        self.dist
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(u, row)| {
                if dirty[u] {
                    let mut scratch = DijkstraScratch::new(n);
                    dijkstra_into(&csr, u, row, &mut scratch);
                }
            });
        repaired
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Shortest-path latency `u -> v` (`INFINITY` if unreachable).
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> Latency {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Finite distance or `None` when unreachable.
    #[inline]
    pub fn get_finite(&self, u: NodeId, v: NodeId) -> Option<Latency> {
        let d = self.get(u, v);
        d.is_finite().then_some(d)
    }

    /// Row of distances from `u`, indexed by `NodeId::index()`.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[f64] {
        &self.dist[u.index() * self.n..(u.index() + 1) * self.n]
    }

    /// Eccentricity of `u`: max distance from `u` to any node
    /// (`INFINITY` on disconnected graphs).
    pub fn eccentricity(&self, u: NodeId) -> f64 {
        self.row(u).iter().copied().fold(0.0, f64::max)
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.n == 0 || self.dist.iter().all(|d| d.is_finite())
    }

    /// Maximum finite pairwise distance, ignoring unreachable pairs.
    pub fn max_finite(&self) -> f64 {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn square_with_diagonal() -> Graph {
        // 0-1, 1-2, 2-3, 3-0 each latency 1; diagonal 0-2 latency 1.5
        let mut g = Graph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(1.0)).collect();
        g.add_edge(n[0], n[1], 1.0, Bandwidth::T1).unwrap();
        g.add_edge(n[1], n[2], 1.0, Bandwidth::T1).unwrap();
        g.add_edge(n[2], n[3], 1.0, Bandwidth::T1).unwrap();
        g.add_edge(n[3], n[0], 1.0, Bandwidth::T1).unwrap();
        g.add_edge(n[0], n[2], 1.5, Bandwidth::T2).unwrap();
        g
    }

    #[test]
    fn parallel_build_bit_identical_to_serial() {
        use crate::gen::{erdos_renyi, GenConfig};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for (n, seed) in [(1usize, 0u64), (7, 1), (40, 2), (97, 3)] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = erdos_renyi(n, 0.05, &GenConfig::default(), &mut rng).unwrap();
            let par = DistanceMatrix::build(&g);
            let ser = DistanceMatrix::build_serial(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        par.get(u, v).to_bits(),
                        ser.get(u, v).to_bits(),
                        "n={n} seed={seed} ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_floyd_warshall() {
        let g = square_with_diagonal();
        let a = DistanceMatrix::build(&g);
        let b = DistanceMatrix::build_floyd_warshall(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert!(
                    (a.get(u, v) - b.get(u, v)).abs() < 1e-12,
                    "mismatch at ({u},{v}): {} vs {}",
                    a.get(u, v),
                    b.get(u, v)
                );
            }
        }
    }

    #[test]
    fn diagonal_shortcut_used() {
        let g = square_with_diagonal();
        let m = DistanceMatrix::build(&g);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(2)), 1.5);
    }

    #[test]
    fn symmetric() {
        let g = square_with_diagonal();
        let m = DistanceMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.get(u, v), m.get(v, u));
            }
        }
    }

    #[test]
    fn connectivity_detection() {
        let g = square_with_diagonal();
        assert!(DistanceMatrix::build(&g).is_connected());

        let mut g2 = Graph::new();
        g2.add_node(1.0);
        g2.add_node(1.0);
        let m = DistanceMatrix::build(&g2);
        assert!(!m.is_connected());
        assert_eq!(m.get_finite(NodeId::new(0), NodeId::new(1)), None);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new();
        assert!(DistanceMatrix::build(&g).is_connected());
    }

    #[test]
    fn eccentricity_of_square() {
        let g = square_with_diagonal();
        let m = DistanceMatrix::build(&g);
        // node 1: dist to 3 is 2.0 (1-0-3 or 1-2-3); to 0 and 2 it's 1.0
        assert_eq!(m.eccentricity(NodeId::new(1)), 2.0);
        assert_eq!(m.max_finite(), 2.0);
    }

    fn assert_bitwise_equal(a: &DistanceMatrix, b: &DistanceMatrix, label: &str) {
        assert_eq!(a.node_count(), b.node_count(), "{label}: size");
        for u in 0..a.node_count() {
            for v in 0..a.node_count() {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                assert_eq!(
                    a.get(u, v).to_bits(),
                    b.get(u, v).to_bits(),
                    "{label}: ({u},{v}) {} vs {}",
                    a.get(u, v),
                    b.get(u, v)
                );
            }
        }
    }

    #[test]
    fn repair_matches_rebuild_for_fail_recover_degrade() {
        let mut g = square_with_diagonal();
        let mut m = DistanceMatrix::build(&g);
        let (a, c) = (NodeId::new(0), NodeId::new(2));

        // Fail the diagonal shortcut: latency -> INFINITY.
        let old = g.set_edge_latency(a, c, f64::INFINITY).unwrap();
        let repaired = m.repair(
            &g,
            &[EdgeUpdate {
                a,
                b: c,
                old_latency: old,
                new_latency: f64::INFINITY,
            }],
        );
        assert!(repaired > 0, "failing a used shortcut must dirty rows");
        assert_bitwise_equal(&m, &DistanceMatrix::build(&g), "fail");
        assert_eq!(m.get(a, c), 2.0, "route around the failed diagonal");

        // Degrade a ring link by 3x.
        let (b, c2) = (NodeId::new(1), NodeId::new(2));
        let old = g.set_edge_latency(b, c2, 3.0).unwrap();
        m.repair(
            &g,
            &[EdgeUpdate {
                a: b,
                b: c2,
                old_latency: old,
                new_latency: 3.0,
            }],
        );
        assert_bitwise_equal(&m, &DistanceMatrix::build(&g), "degrade");

        // Recover the diagonal: the pre-failure distance comes back.
        let old = g.set_edge_latency(a, c, 1.5).unwrap();
        m.repair(
            &g,
            &[EdgeUpdate {
                a,
                b: c,
                old_latency: old,
                new_latency: 1.5,
            }],
        );
        assert_bitwise_equal(&m, &DistanceMatrix::build(&g), "recover");
        assert_eq!(m.get(a, c), 1.5);
    }

    #[test]
    fn repair_skips_rows_for_unused_edge_increase() {
        // Raising the latency of an edge on no shortest path touches no row.
        let mut g = square_with_diagonal();
        let mut m = DistanceMatrix::build(&g);
        let (a, c) = (NodeId::new(0), NodeId::new(2));
        // diagonal at 1.5 is used; raise it slightly above 2.0 first
        let old = g.set_edge_latency(a, c, 5.0).unwrap();
        m.repair(
            &g,
            &[EdgeUpdate {
                a,
                b: c,
                old_latency: old,
                new_latency: 5.0,
            }],
        );
        // now at 5.0 it is on no shortest path; raising further is free
        let old = g.set_edge_latency(a, c, 9.0).unwrap();
        let repaired = m.repair(
            &g,
            &[EdgeUpdate {
                a,
                b: c,
                old_latency: old,
                new_latency: 9.0,
            }],
        );
        assert_eq!(repaired, 0);
        assert_bitwise_equal(&m, &DistanceMatrix::build(&g), "unused edge");
    }

    #[test]
    fn repair_handles_batch_updates_and_disconnection() {
        // Fail *every* edge incident to node 3 in one batch (a node
        // failure), disconnecting it, then recover in one batch.
        let mut g = square_with_diagonal();
        let pristine = DistanceMatrix::build(&g);
        let mut m = pristine.clone();
        let n3 = NodeId::new(3);
        let mut batch = Vec::new();
        for other in [NodeId::new(0), NodeId::new(2)] {
            let old = g.set_edge_latency(n3, other, f64::INFINITY).unwrap();
            batch.push(EdgeUpdate {
                a: n3,
                b: other,
                old_latency: old,
                new_latency: f64::INFINITY,
            });
        }
        m.repair(&g, &batch);
        assert_bitwise_equal(&m, &DistanceMatrix::build(&g), "node fail");
        assert!(!m.is_connected());
        assert_eq!(m.get_finite(NodeId::new(0), n3), None);

        let recover: Vec<EdgeUpdate> = batch
            .iter()
            .map(|up| {
                g.set_edge_latency(up.a, up.b, up.old_latency).unwrap();
                EdgeUpdate {
                    a: up.a,
                    b: up.b,
                    old_latency: f64::INFINITY,
                    new_latency: up.old_latency,
                }
            })
            .collect();
        m.repair(&g, &recover);
        assert_bitwise_equal(&m, &pristine, "node recover restores exactly");
    }

    #[test]
    fn triangle_inequality_holds() {
        let g = square_with_diagonal();
        let m = DistanceMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                for w in g.nodes() {
                    assert!(m.get(u, w) <= m.get(u, v) + m.get(v, w) + 1e-12);
                }
            }
        }
    }
}
