//! # flexserve-graph
//!
//! Substrate network model for the flexible server allocation system.
//!
//! The paper ("On the Benefit of Virtualization: Strategies for Flexible
//! Server Allocation", Arora et al.) models the physical infrastructure as a
//! substrate network `G = (V, E)` where every node `v` carries a *strength*
//! `ω(v)` (CPU cores, memory, bus speed, ...) and every link `e` carries a
//! bandwidth capacity `ω(e)` and a latency `λ(e)`.
//!
//! This crate provides:
//!
//! * [`Graph`] — an undirected weighted multigraph-free substrate graph with
//!   per-node strength and per-edge latency/bandwidth,
//! * shortest-path machinery ([`path`], [`apsp`]) used for request access
//!   costs,
//! * graph metrics ([`metrics`]) such as the network *center*, where online
//!   algorithms start their first server,
//! * connectivity utilities ([`connectivity`]),
//! * random and structured topology generators ([`gen`]): Erdős–Rényi
//!   (connection probability 1% in the paper), line graphs (used for the
//!   optimal offline algorithm), rings, stars, grids, trees, random
//!   geometric and Waxman graphs.
//!
//! ## Example
//!
//! ```
//! use flexserve_graph::{Graph, NodeId};
//! use flexserve_graph::path::shortest_paths;
//!
//! let mut g = Graph::new();
//! let a = g.add_node(1.0);
//! let b = g.add_node(1.0);
//! let c = g.add_node(2.0);
//! g.add_edge(a, b, 5.0, flexserve_graph::Bandwidth::T1).unwrap();
//! g.add_edge(b, c, 2.0, flexserve_graph::Bandwidth::T2).unwrap();
//!
//! let sp = shortest_paths(&g, a);
//! assert_eq!(sp.distance(c), Some(7.0));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apsp;
pub mod connectivity;
pub mod csr;
pub mod error;
pub mod gen;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod path;
pub mod units;

pub use apsp::{DistanceMatrix, EdgeUpdate};
pub use csr::CsrAdjacency;
pub use error::GraphError;
pub use graph::{EdgeRef, Graph};
pub use ids::{EdgeId, NodeId};
pub use units::{Bandwidth, Latency, Strength};
