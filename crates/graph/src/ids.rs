//! Strongly-typed identifiers for graph entities.
//!
//! Using newtypes instead of bare `usize` prevents an entire class of bugs
//! where a node index is accidentally used as an edge index (or as a server
//! index in the higher layers).

use std::fmt;

/// Identifier of a substrate node.
///
/// `NodeId`s are dense indices assigned in insertion order, so they can be
/// used to index per-node arrays (`Vec<T>` of length `graph.node_count()`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a `NodeId` from a raw index.
    ///
    /// Mostly useful in tests and deserialization; in normal code `NodeId`s
    /// come from [`crate::Graph::add_node`].
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The raw dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a substrate link.
///
/// Dense indices in insertion order, usable for per-edge arrays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Creates an `EdgeId` from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// The raw dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(9));
    }
}
