//! Substrate topology generators.
//!
//! The paper evaluates on (a) Erdős–Rényi random graphs with connection
//! probability 1%, (b) line graphs (for the optimal offline DP), and
//! (c) Rocketfuel ISP maps (provided by the `flexserve-topology` crate).
//! This module supplies (a), (b) and a family of additional structured and
//! random topologies used by tests, examples and ablation benches.
//!
//! All generators share [`GenConfig`]: node strengths, the edge-latency
//! range, and the T1/T2 bandwidth mix (the paper: "link bandwidths are
//! chosen at random (either T1 (1.544 Mbit/s) or T2 (6.312 Mbit/s))").
//! Latencies on artificial graphs are drawn uniformly from
//! `latency_range` (default 1..=10 ms — documented substitution, the paper
//! does not state latencies for artificial graphs).

mod erdos_renyi;
mod geometric;
mod grid;
mod line;
mod ring;
mod star;
mod tree;
mod waxman;

pub use erdos_renyi::erdos_renyi;
pub use geometric::random_geometric;
pub use grid::grid;
pub use line::{line, unit_line};
pub use ring::ring;
pub use star::star;
pub use tree::random_tree;
pub use waxman::waxman;

use rand::Rng;

use crate::units::Bandwidth;

/// Shared configuration for all substrate generators.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Node strength `ω(v)` assigned to every node (uniform in
    /// `strength_range`).
    pub strength_range: (f64, f64),
    /// Uniform range for edge latencies in milliseconds.
    pub latency_range: (f64, f64),
    /// Probability that a link is T1 (otherwise T2).
    pub t1_probability: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            strength_range: (1.0, 1.0),
            latency_range: (1.0, 10.0),
            t1_probability: 0.5,
        }
    }
}

impl GenConfig {
    /// Samples a node strength.
    pub fn sample_strength<R: Rng>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = self.strength_range;
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        }
    }

    /// Samples an edge latency.
    pub fn sample_latency<R: Rng>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = self.latency_range;
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        }
    }

    /// Samples a T1-or-T2 bandwidth.
    pub fn sample_bandwidth<R: Rng>(&self, rng: &mut R) -> Bandwidth {
        if rng.gen_bool(self.t1_probability) {
            Bandwidth::T1
        } else {
            Bandwidth::T2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_config_sane() {
        let c = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            let s = c.sample_strength(&mut rng);
            assert_eq!(s, 1.0);
            let l = c.sample_latency(&mut rng);
            assert!((1.0..=10.0).contains(&l));
        }
    }

    #[test]
    fn bandwidth_mix_respects_probability() {
        let mut c = GenConfig {
            t1_probability: 1.0,
            ..GenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(c.sample_bandwidth(&mut rng), Bandwidth::T1);
        }
        c.t1_probability = 0.0;
        for _ in 0..50 {
            assert_eq!(c.sample_bandwidth(&mut rng), Bandwidth::T2);
        }
    }

    #[test]
    fn degenerate_ranges() {
        let c = GenConfig {
            strength_range: (2.0, 2.0),
            latency_range: (3.0, 3.0),
            t1_probability: 0.5,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(c.sample_strength(&mut rng), 2.0);
        assert_eq!(c.sample_latency(&mut rng), 3.0);
    }
}
