//! Random geometric graphs: nodes on the unit square, edges between nodes
//! within radius `r`, latency proportional to Euclidean distance. A more
//! "geographic" substrate than Erdős–Rényi; used in ablations to check that
//! results are not artifacts of the ER topology.

use rand::Rng;

use crate::connectivity::connect_components;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a connected random geometric graph.
///
/// `latency_scale` converts unit-square Euclidean distance into
/// milliseconds (latency = distance × scale; a unit-square diagonal is
/// `sqrt(2) × scale` ms).
pub fn random_geometric<R: Rng>(
    n: usize,
    radius: f64,
    latency_scale: f64,
    cfg: &GenConfig,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorArgs(
            "random_geometric: n must be >= 1".into(),
        ));
    }
    if !(0.0..=2.0).contains(&radius) {
        return Err(GraphError::InvalidGeneratorArgs(format!(
            "random_geometric: radius {radius} out of range"
        )));
    }
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = Graph::with_capacity(n, n * 4);
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let d2 = dx * dx + dy * dy;
            if d2 <= r2 {
                let lat = d2.sqrt() * latency_scale;
                let bw = cfg.sample_bandwidth(rng);
                g.add_edge(NodeId::new(i), NodeId::new(j), lat, bw)?;
            }
        }
    }
    connect_components(&mut g, rng, (latency_scale * radius, latency_scale));
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn connected_and_sized() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let g = random_geometric(80, 0.2, 10.0, &cfg, &mut rng).unwrap();
        assert_eq!(g.node_count(), 80);
        assert!(is_connected(&g));
    }

    #[test]
    fn latencies_bounded_by_radius() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let scale = 5.0;
        let radius = 0.3;
        let g = random_geometric(60, radius, scale, &cfg, &mut rng).unwrap();
        // geometric edges obey latency <= radius*scale; bridges may reach
        // up to `scale`.
        for e in g.edges() {
            assert!(e.latency <= scale + 1e-9);
        }
    }

    #[test]
    fn rejects_bad_args() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(random_geometric(0, 0.2, 1.0, &cfg, &mut rng).is_err());
        assert!(random_geometric(5, 3.0, 1.0, &cfg, &mut rng).is_err());
    }
}
