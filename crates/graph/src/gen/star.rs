//! Star graphs — one hub, `n-1` leaves. The extreme "everything close to
//! the center" topology: a single well-placed server is optimal, which makes
//! stars good sanity fixtures for OFFSTAT and the convergence tests.

use rand::Rng;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a star with hub `n0` and leaves `n1..n(n-1)`. Requires `n >= 1`.
pub fn star<R: Rng>(n: usize, cfg: &GenConfig, rng: &mut R) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorArgs(
            "star: n must be >= 1".into(),
        ));
    }
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    for i in 1..n {
        let lat = cfg.sample_latency(rng);
        let bw = cfg.sample_bandwidth(rng);
        g.add_edge(NodeId::new(0), NodeId::new(i), lat, bw)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::center;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn hub_is_center() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = star(9, &cfg, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.degree(NodeId::new(0)), 8);
        assert_eq!(center(&g), NodeId::new(0));
    }

    #[test]
    fn degenerate_star() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = star(1, &cfg, &mut rng).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(star(0, &cfg, &mut rng).is_err());
    }
}
