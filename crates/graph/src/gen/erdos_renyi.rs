//! Erdős–Rényi `G(n, p)` random graphs.

use rand::Rng;

use crate::connectivity::connect_components;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a connected Erdős–Rényi `G(n, p)` substrate.
///
/// Each of the `n·(n-1)/2` node pairs is connected independently with
/// probability `p` (the paper uses `p = 0.01`). Because `p = 1%` samples
/// are often disconnected below the connectivity threshold
/// (`p ≈ ln n / n`), the generator afterwards bridges components with
/// random links so the substrate is usable — see `connectivity` module
/// docs for the rationale.
pub fn erdos_renyi<R: Rng>(
    n: usize,
    p: f64,
    cfg: &GenConfig,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorArgs(
            "erdos_renyi: n must be >= 1".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidGeneratorArgs(format!(
            "erdos_renyi: p = {p} must be in [0, 1]"
        )));
    }
    let mut g = Graph::with_capacity(n, (p * (n * n) as f64 / 2.0) as usize + n);
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                let lat = cfg.sample_latency(rng);
                let bw = cfg.sample_bandwidth(rng);
                g.add_edge(NodeId::new(i), NodeId::new(j), lat, bw)?;
            }
        }
    }
    connect_components(&mut g, rng, cfg.latency_range);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn always_connected() {
        let cfg = GenConfig::default();
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = erdos_renyi(100, 0.01, &cfg, &mut rng).unwrap();
            assert_eq!(g.node_count(), 100);
            assert!(is_connected(&g), "seed {seed} disconnected");
        }
    }

    #[test]
    fn edge_density_roughly_matches_p() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 300;
        let p = 0.05;
        let g = erdos_renyi(n, p, &cfg, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.edge_count() as f64;
        // within 25% (plus possible connectivity bridges)
        assert!(
            actual > expected * 0.75 && actual < expected * 1.35,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn p_zero_becomes_spanning_bridges() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = erdos_renyi(10, 0.0, &cfg, &mut rng).unwrap();
        // all edges come from connectivity repair: exactly n-1 bridges
        assert_eq!(g.edge_count(), 9);
        assert!(is_connected(&g));
    }

    #[test]
    fn p_one_is_complete() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = erdos_renyi(8, 1.0, &cfg, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 8 * 7 / 2);
    }

    #[test]
    fn rejects_bad_args() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(erdos_renyi(0, 0.5, &cfg, &mut rng).is_err());
        assert!(erdos_renyi(5, 1.5, &cfg, &mut rng).is_err());
        assert!(erdos_renyi(5, -0.1, &cfg, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GenConfig::default();
        let g1 = erdos_renyi(50, 0.05, &cfg, &mut SmallRng::seed_from_u64(9)).unwrap();
        let g2 = erdos_renyi(50, 0.05, &cfg, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(g1.total_latency(), g2.total_latency());
    }
}
