//! Waxman random graphs — the classic internet-topology model
//! (Waxman 1988): nodes on the unit square, edge probability
//! `α · exp(−d / (β_w · L))` where `d` is Euclidean distance and `L` the
//! maximum possible distance. Long links exist but are rare, which mimics
//! real ISP maps better than Erdős–Rényi.

use rand::Rng;

use crate::connectivity::connect_components;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a connected Waxman graph.
///
/// * `alpha` — overall edge density (0, 1];
/// * `beta_w` — distance decay (0, 1]: larger ⇒ more long edges;
/// * `latency_scale` — ms per unit Euclidean distance.
pub fn waxman<R: Rng>(
    n: usize,
    alpha: f64,
    beta_w: f64,
    latency_scale: f64,
    cfg: &GenConfig,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorArgs(
            "waxman: n must be >= 1".into(),
        ));
    }
    let in_unit = |x: f64| x > 0.0 && x <= 1.0;
    if !in_unit(alpha) || !in_unit(beta_w) {
        return Err(GraphError::InvalidGeneratorArgs(format!(
            "waxman: alpha {alpha} and beta {beta_w} must be in (0, 1]"
        )));
    }
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let l = 2f64.sqrt();
    let mut g = Graph::with_capacity(n, n * 3);
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = alpha * (-d / (beta_w * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let lat = d * latency_scale;
                let bw = cfg.sample_bandwidth(rng);
                g.add_edge(NodeId::new(i), NodeId::new(j), lat, bw)?;
            }
        }
    }
    connect_components(&mut g, rng, (0.1 * latency_scale, latency_scale));
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn connected_and_plausible_density() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let g = waxman(100, 0.4, 0.2, 10.0, &cfg, &mut rng).unwrap();
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 99); // at least spanning
    }

    #[test]
    fn higher_alpha_more_edges() {
        let cfg = GenConfig::default();
        let sparse = waxman(80, 0.1, 0.15, 1.0, &cfg, &mut SmallRng::seed_from_u64(2)).unwrap();
        let dense = waxman(80, 0.9, 0.15, 1.0, &cfg, &mut SmallRng::seed_from_u64(2)).unwrap();
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn rejects_bad_args() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(waxman(0, 0.5, 0.5, 1.0, &cfg, &mut rng).is_err());
        assert!(waxman(5, 0.0, 0.5, 1.0, &cfg, &mut rng).is_err());
        assert!(waxman(5, 0.5, 1.5, 1.0, &cfg, &mut rng).is_err());
    }
}
