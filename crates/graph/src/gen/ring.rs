//! Ring (cycle) graphs — useful for modelling backbone loops and as a
//! worst-case topology for migration strategies (two escape directions).

use rand::Rng;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a cycle `0 - 1 - ... - (n-1) - 0`. Requires `n >= 3`.
pub fn ring<R: Rng>(n: usize, cfg: &GenConfig, rng: &mut R) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidGeneratorArgs(
            "ring: n must be >= 3".into(),
        ));
    }
    let mut g = Graph::with_capacity(n, n);
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    for i in 0..n {
        let j = (i + 1) % n;
        let lat = cfg.sample_latency(rng);
        let bw = cfg.sample_bandwidth(rng);
        g.add_edge(NodeId::new(i), NodeId::new(j), lat, bw)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_node_has_degree_two() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = ring(7, &cfg, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 7);
        assert!(is_connected(&g));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn too_small_rejected() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(ring(2, &cfg, &mut rng).is_err());
    }
}
