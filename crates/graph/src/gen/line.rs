//! Line (path) graphs — the topology the paper restricts to when running
//! the optimal offline DP: "To simulate OPT, we constrain ourselves to line
//! graphs."

use rand::Rng;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a line graph `0 - 1 - 2 - ... - (n-1)` with latencies and
/// bandwidths drawn from `cfg`.
pub fn line<R: Rng>(n: usize, cfg: &GenConfig, rng: &mut R) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorArgs(
            "line: n must be >= 1".into(),
        ));
    }
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    for i in 0..n.saturating_sub(1) {
        let lat = cfg.sample_latency(rng);
        let bw = cfg.sample_bandwidth(rng);
        g.add_edge(NodeId::new(i), NodeId::new(i + 1), lat, bw)?;
    }
    Ok(g)
}

/// Generates a line graph with unit latencies — the canonical instance used
/// by the competitive-ratio experiments where exact positions matter.
pub fn unit_line(n: usize) -> Result<Graph, GraphError> {
    let cfg = GenConfig {
        latency_range: (1.0, 1.0),
        ..GenConfig::default()
    };
    // RNG never consulted for constant ranges, but the API wants one.
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    line(n, &cfg, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::metrics::metrics;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn structure_is_a_path() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let g = line(6, &cfg, &mut rng).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(is_connected(&g));
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(5)), 1);
        for i in 1..5 {
            assert_eq!(g.degree(NodeId::new(i)), 2);
        }
    }

    #[test]
    fn unit_line_diameter() {
        let g = unit_line(5).unwrap();
        let m = metrics(&g);
        assert_eq!(m.diameter, 4.0);
        assert_eq!(m.center, NodeId::new(2));
        assert_eq!(m.radius, 2.0);
    }

    #[test]
    fn singleton_line() {
        let g = unit_line(1).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn zero_rejected() {
        assert!(unit_line(0).is_err());
    }
}
