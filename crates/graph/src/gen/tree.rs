//! Uniform random trees (random attachment) — sparse, loop-free substrates
//! with pronounced centers; used by tests and the ablation benches.

use rand::Rng;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a random tree on `n` nodes: node `i > 0` attaches to a uniform
/// random node `j < i` (random recursive tree).
pub fn random_tree<R: Rng>(n: usize, cfg: &GenConfig, rng: &mut R) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorArgs(
            "random_tree: n must be >= 1".into(),
        ));
    }
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        let lat = cfg.sample_latency(rng);
        let bw = cfg.sample_bandwidth(rng);
        g.add_edge(NodeId::new(parent), NodeId::new(i), lat, bw)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tree_invariant_edges_eq_n_minus_1() {
        let cfg = GenConfig::default();
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = random_tree(40, &cfg, &mut rng).unwrap();
            assert_eq!(g.edge_count(), 39);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn singleton() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = random_tree(1, &cfg, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
    }
}
