//! 2-D grid graphs — the commuter scenario's "downtown and suburbs" picture
//! maps naturally onto a grid with the center playing downtown.

use rand::Rng;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

use super::GenConfig;

/// Generates a `rows × cols` 4-neighbor grid. Node `(r, c)` has id
/// `r * cols + c`.
pub fn grid<R: Rng>(
    rows: usize,
    cols: usize,
    cfg: &GenConfig,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidGeneratorArgs(
            "grid: rows and cols must be >= 1".into(),
        ));
    }
    let n = rows * cols;
    let mut g = Graph::with_capacity(n, 2 * n);
    for _ in 0..n {
        let s = cfg.sample_strength(rng);
        g.try_add_node(s)?;
    }
    for r in 0..rows {
        for c in 0..cols {
            let id = NodeId::new(r * cols + c);
            if c + 1 < cols {
                let right = NodeId::new(r * cols + c + 1);
                g.add_edge(
                    id,
                    right,
                    cfg.sample_latency(rng),
                    cfg.sample_bandwidth(rng),
                )?;
            }
            if r + 1 < rows {
                let down = NodeId::new((r + 1) * cols + c);
                g.add_edge(id, down, cfg.sample_latency(rng), cfg.sample_bandwidth(rng))?;
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn counts() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = grid(3, 4, &cfg, &mut rng).unwrap();
        assert_eq!(g.node_count(), 12);
        // edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
    }

    #[test]
    fn corner_degree_is_two() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = grid(3, 3, &cfg, &mut rng).unwrap();
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(4)), 4); // middle of 3x3
    }

    #[test]
    fn one_by_one() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        let g = grid(1, 1, &cfg, &mut rng).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn zero_dims_rejected() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(grid(0, 5, &cfg, &mut rng).is_err());
        assert!(grid(5, 0, &cfg, &mut rng).is_err());
    }
}
