//! Graph metrics: center, diameter, radius, average path length.
//!
//! The online algorithms in the paper "start in an arbitrary configuration,
//! e.g., hosting one server at the network center" — the center is the node
//! of minimum eccentricity, computed here.

use crate::apsp::DistanceMatrix;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Summary metrics of a substrate graph, derived from a [`DistanceMatrix`].
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMetrics {
    /// Node with minimal eccentricity (ties broken by smallest id).
    pub center: NodeId,
    /// Minimum eccentricity (= eccentricity of the center).
    pub radius: f64,
    /// Maximum finite eccentricity.
    pub diameter: f64,
    /// Mean shortest-path latency over ordered reachable pairs `u != v`.
    pub avg_path_latency: f64,
    /// Whether the graph is connected.
    pub connected: bool,
}

/// Computes [`GraphMetrics`] from a prebuilt distance matrix.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn metrics_from_matrix(m: &DistanceMatrix) -> GraphMetrics {
    let n = m.node_count();
    assert!(n > 0, "metrics of an empty graph are undefined");
    let mut center = NodeId::new(0);
    let mut radius = f64::INFINITY;
    let mut diameter: f64 = 0.0;
    let mut sum = 0.0;
    let mut pairs = 0usize;
    let mut connected = true;

    for ui in 0..n {
        let u = NodeId::new(ui);
        let mut ecc: f64 = 0.0;
        for vi in 0..n {
            let d = m.get(u, NodeId::new(vi));
            if d.is_finite() {
                ecc = ecc.max(d);
                if ui != vi {
                    sum += d;
                    pairs += 1;
                }
            } else {
                connected = false;
            }
        }
        if ecc < radius {
            radius = ecc;
            center = u;
        }
        diameter = diameter.max(ecc);
    }

    GraphMetrics {
        center,
        radius,
        diameter,
        avg_path_latency: if pairs > 0 { sum / pairs as f64 } else { 0.0 },
        connected,
    }
}

/// Convenience: builds the distance matrix and computes metrics.
pub fn metrics(g: &Graph) -> GraphMetrics {
    metrics_from_matrix(&DistanceMatrix::build(g))
}

/// The network center (minimum-eccentricity node, smallest id on ties).
pub fn center(g: &Graph) -> NodeId {
    metrics(g).center
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn path_graph(n: usize, lat: f64) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..n).map(|_| g.add_node(1.0)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], lat, Bandwidth::T1).unwrap();
        }
        g
    }

    #[test]
    fn center_of_odd_path_is_midpoint() {
        let g = path_graph(5, 1.0);
        let m = metrics(&g);
        assert_eq!(m.center, NodeId::new(2));
        assert_eq!(m.radius, 2.0);
        assert_eq!(m.diameter, 4.0);
        assert!(m.connected);
    }

    #[test]
    fn center_of_even_path_breaks_ties_low() {
        let g = path_graph(4, 1.0);
        let m = metrics(&g);
        // nodes 1 and 2 both have eccentricity 2; smallest id wins
        assert_eq!(m.center, NodeId::new(1));
        assert_eq!(m.radius, 2.0);
        assert_eq!(m.diameter, 3.0);
    }

    #[test]
    fn star_center() {
        let mut g = Graph::new();
        let hub = g.add_node(1.0);
        for _ in 0..6 {
            let leaf = g.add_node(1.0);
            g.add_edge(hub, leaf, 3.0, Bandwidth::T2).unwrap();
        }
        let m = metrics(&g);
        assert_eq!(m.center, hub);
        assert_eq!(m.radius, 3.0);
        assert_eq!(m.diameter, 6.0);
    }

    #[test]
    fn avg_path_latency_of_two_nodes() {
        let g = path_graph(2, 5.0);
        let m = metrics(&g);
        assert_eq!(m.avg_path_latency, 5.0);
    }

    #[test]
    fn disconnected_flagged() {
        let mut g = Graph::new();
        g.add_node(1.0);
        g.add_node(1.0);
        let m = metrics(&g);
        assert!(!m.connected);
    }

    #[test]
    fn single_node_metrics() {
        let mut g = Graph::new();
        g.add_node(1.0);
        let m = metrics(&g);
        assert_eq!(m.center, NodeId::new(0));
        assert_eq!(m.radius, 0.0);
        assert_eq!(m.diameter, 0.0);
        assert!(m.connected);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        metrics(&Graph::new());
    }
}
