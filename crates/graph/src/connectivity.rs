//! Connectivity utilities: BFS components and connected-graph repair.
//!
//! Erdős–Rényi graphs with 1% connection probability (the paper's setting)
//! are frequently disconnected at small `n`; the generators use
//! [`connect_components`] to repair them (documented substitution: the paper
//! does not say how it handles disconnected samples; bridging components
//! with fresh random-latency links is the minimal intervention).

use rand::Rng;

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::units::Bandwidth;

/// Assigns each node a component label (`0..component_count`), by BFS.
pub fn components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(NodeId::new(start));
        while let Some(u) = queue.pop_front() {
            for e in g.neighbors(u) {
                let v = e.target;
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components (0 for the empty graph).
pub fn component_count(g: &Graph) -> usize {
    components(g).iter().copied().max().map_or(0, |m| m + 1)
}

/// Whether the graph is connected (true for empty and singleton graphs).
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// Repairs a disconnected graph by adding random bridge edges between
/// components until connected. Each bridge connects a random node of the
/// running giant component to a random node of the next component; latency
/// is drawn from `latency_range` and bandwidth is T1/T2 with equal
/// probability, mirroring the generator conventions.
///
/// Returns the number of edges added.
pub fn connect_components<R: Rng>(g: &mut Graph, rng: &mut R, latency_range: (f64, f64)) -> usize {
    let comp = components(g);
    let k = comp.iter().copied().max().map_or(0, |m| m + 1);
    if k <= 1 {
        return 0;
    }
    // Bucket nodes by component.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (i, &c) in comp.iter().enumerate() {
        buckets[c].push(NodeId::new(i));
    }
    // Merge every further component into component 0's growing pool.
    let mut pool: Vec<NodeId> = buckets[0].clone();
    let mut added = 0;
    for bucket in buckets.iter().skip(1) {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = bucket[rng.gen_range(0..bucket.len())];
        let lat = rng.gen_range(latency_range.0..=latency_range.1);
        let bw = if rng.gen_bool(0.5) {
            Bandwidth::T1
        } else {
            Bandwidth::T2
        };
        // The pair is guaranteed non-adjacent (different components).
        g.add_edge(a, b, lat, bw)
            .expect("bridge endpoints are in different components");
        pool.extend_from_slice(bucket);
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_has_no_components() {
        let g = Graph::new();
        assert_eq!(component_count(&g), 0);
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let mut g = Graph::new();
        for _ in 0..4 {
            g.add_node(1.0);
        }
        assert_eq!(component_count(&g), 4);
        assert!(!is_connected(&g));
    }

    #[test]
    fn single_edge_merges_two() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_node(1.0);
        g.add_edge(a, b, 1.0, Bandwidth::T1).unwrap();
        let comp = components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn connect_components_repairs() {
        let mut g = Graph::new();
        for _ in 0..10 {
            g.add_node(1.0);
        }
        // two chains: 0-1-2-3-4 and 5-6-7-8-9
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), 1.0, Bandwidth::T1)
                .unwrap();
            g.add_edge(NodeId::new(i + 5), NodeId::new(i + 6), 1.0, Bandwidth::T1)
                .unwrap();
        }
        assert_eq!(component_count(&g), 2);
        let mut rng = SmallRng::seed_from_u64(7);
        let added = connect_components(&mut g, &mut rng, (1.0, 10.0));
        assert_eq!(added, 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b, 1.0, Bandwidth::T1).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(connect_components(&mut g, &mut rng, (1.0, 2.0)), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn connect_many_singletons() {
        let mut g = Graph::new();
        for _ in 0..20 {
            g.add_node(1.0);
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let added = connect_components(&mut g, &mut rng, (1.0, 5.0));
        assert_eq!(added, 19);
        assert!(is_connected(&g));
        // all bridge latencies within range
        for e in g.edges() {
            assert!(e.latency >= 1.0 && e.latency <= 5.0);
        }
    }
}
