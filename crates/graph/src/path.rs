//! Single-source shortest paths (Dijkstra).
//!
//! Access cost in the paper is "the sum of the requests' latencies to the
//! corresponding servers (e.g., along the shortest paths on the substrate
//! network)", so shortest-path latency is the workhorse of the whole cost
//! model.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::units::Latency;

/// Result of a single-source Dijkstra run: distances and predecessor tree.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source node of this run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest-path latency from the source to `v`, or `None` when `v` is
    /// unreachable.
    pub fn distance(&self, v: NodeId) -> Option<Latency> {
        let d = self.dist[v.index()];
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// All distances as a slice (`f64::INFINITY` = unreachable), indexed by
    /// `NodeId::index()`.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Reconstructs the node sequence of the shortest path `source -> v`
    /// (inclusive on both ends). Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist[v.index()].is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&self.source));
        Some(path)
    }

    /// Number of hops (edges) on the shortest path to `v`.
    pub fn hops_to(&self, v: NodeId) -> Option<usize> {
        self.path_to(v).map(|p| p.len() - 1)
    }
}

/// Heap entry; `BinaryHeap` is a max-heap so ordering is reversed.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller distance = greater priority. Distances are finite
        // non-NaN by construction (only finite latencies enter the graph).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Runs Dijkstra from `source` over link latencies.
///
/// # Panics
///
/// Panics if `source` is not a node of `g`.
pub fn shortest_paths(g: &Graph, source: NodeId) -> ShortestPaths {
    assert!(
        g.contains_node(source),
        "shortest_paths: unknown source {source}"
    );
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);

    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        for e in g.neighbors(u) {
            let v = e.target;
            if settled[v.index()] {
                continue;
            }
            let nd = d + e.latency;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    ShortestPaths { source, dist, prev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    /// 0 --1-- 1 --1-- 2
    ///  \------10-----/      (direct shortcut is worse)
    fn shortcut_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b, 1.0, Bandwidth::T1).unwrap();
        g.add_edge(b, c, 1.0, Bandwidth::T1).unwrap();
        g.add_edge(a, c, 10.0, Bandwidth::T1).unwrap();
        g
    }

    #[test]
    fn prefers_multi_hop_when_cheaper() {
        let g = shortcut_graph();
        let sp = shortest_paths(&g, NodeId::new(0));
        assert_eq!(sp.distance(NodeId::new(2)), Some(2.0));
        assert_eq!(
            sp.path_to(NodeId::new(2)).unwrap(),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(sp.hops_to(NodeId::new(2)), Some(2));
    }

    #[test]
    fn source_distance_is_zero() {
        let g = shortcut_graph();
        let sp = shortest_paths(&g, NodeId::new(1));
        assert_eq!(sp.distance(NodeId::new(1)), Some(0.0));
        assert_eq!(sp.path_to(NodeId::new(1)).unwrap(), vec![NodeId::new(1)]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let _lonely = g.add_node(1.0);
        let sp = shortest_paths(&g, a);
        assert_eq!(sp.distance(NodeId::new(1)), None);
        assert_eq!(sp.path_to(NodeId::new(1)), None);
    }

    #[test]
    fn zero_latency_edges() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b, 0.0, Bandwidth::T1).unwrap();
        g.add_edge(b, c, 3.0, Bandwidth::T1).unwrap();
        let sp = shortest_paths(&g, a);
        assert_eq!(sp.distance(c), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn panics_on_unknown_source() {
        let g = Graph::new();
        shortest_paths(&g, NodeId::new(0));
    }

    #[test]
    fn line_graph_distances_are_prefix_sums() {
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..5).map(|_| g.add_node(1.0)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 2.5, Bandwidth::T2).unwrap();
        }
        let sp = shortest_paths(&g, nodes[0]);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(sp.distance(v), Some(2.5 * i as f64));
        }
    }
}
