//! The substrate graph data structure.
//!
//! [`Graph`] is an undirected simple graph with:
//!
//! * per-node *strength* `ω(v)` (used by the load function),
//! * per-edge *latency* `λ(e)` (used by the access-cost model) and
//!   *bandwidth* `ω(e)`,
//! * dense `NodeId`/`EdgeId` indices, adjacency lists for O(deg) neighbor
//!   iteration, and an edge-existence index for O(1) duplicate detection.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::units::{Bandwidth, Latency, Strength};

/// Internal node record.
#[derive(Clone, Debug)]
struct NodeData {
    strength: Strength,
    /// Optional human-readable label (city name for Rocketfuel-like
    /// topologies; empty otherwise).
    label: String,
    /// Adjacency: (neighbor, edge id).
    adjacency: Vec<(NodeId, EdgeId)>,
}

/// Internal edge record.
#[derive(Clone, Debug)]
struct EdgeData {
    endpoints: (NodeId, NodeId),
    latency: Latency,
    bandwidth: Bandwidth,
}

/// A borrowed view of one edge, as yielded by [`Graph::edges`] and
/// [`Graph::neighbors`].
#[derive(Clone, Copy, Debug)]
pub struct EdgeRef {
    /// Edge identifier.
    pub id: EdgeId,
    /// First endpoint (insertion order, not meaningful for undirected edges).
    pub source: NodeId,
    /// Second endpoint.
    pub target: NodeId,
    /// Link latency `λ(e)` in milliseconds.
    pub latency: Latency,
    /// Link bandwidth capacity `ω(e)`.
    pub bandwidth: Bandwidth,
}

/// An undirected, simple, weighted substrate network graph.
///
/// Nodes and edges are append-only: the substrate topology is fixed for the
/// lifetime of a simulation (the *demand* moves, not the network), so no
/// removal API is provided. This keeps `NodeId`s dense and stable, which the
/// simulation layers exploit for flat per-node arrays.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    /// (min(u,v), max(u,v)) -> edge id, for O(1) duplicate/lookup.
    edge_index: HashMap<(NodeId, NodeId), EdgeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            edge_index: HashMap::with_capacity(edges),
        }
    }

    /// Adds a node with strength `ω(v)` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is not finite and strictly positive; use
    /// [`Graph::try_add_node`] for a fallible variant.
    pub fn add_node(&mut self, strength: Strength) -> NodeId {
        self.try_add_node(strength)
            .expect("node strength must be finite and > 0")
    }

    /// Fallible variant of [`Graph::add_node`].
    pub fn try_add_node(&mut self, strength: Strength) -> Result<NodeId, GraphError> {
        if !strength.is_finite() || strength <= 0.0 {
            return Err(GraphError::InvalidStrength(strength));
        }
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(NodeData {
            strength,
            label: String::new(),
            adjacency: Vec::new(),
        });
        Ok(id)
    }

    /// Adds a labeled node (e.g. a PoP city name).
    pub fn add_labeled_node(
        &mut self,
        strength: Strength,
        label: impl Into<String>,
    ) -> Result<NodeId, GraphError> {
        let id = self.try_add_node(strength)?;
        self.nodes[id.index()].label = label.into();
        Ok(id)
    }

    /// Adds an undirected edge `{u, v}` with the given latency and bandwidth.
    pub fn add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        latency: Latency,
        bandwidth: Bandwidth,
    ) -> Result<EdgeId, GraphError> {
        if u.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(u));
        }
        if v.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !latency.is_finite() || latency < 0.0 {
            return Err(GraphError::InvalidLatency(latency));
        }
        let key = Self::edge_key(u, v);
        if self.edge_index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(EdgeData {
            endpoints: (u, v),
            latency,
            bandwidth,
        });
        self.edge_index.insert(key, id);
        self.nodes[u.index()].adjacency.push((v, id));
        self.nodes[v.index()].adjacency.push((u, id));
        Ok(id)
    }

    #[inline]
    fn edge_key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph contains no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is a valid node of this graph.
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// Node strength `ω(v)`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[inline]
    pub fn strength(&self, v: NodeId) -> Strength {
        self.nodes[v.index()].strength
    }

    /// The node's human-readable label, if any.
    pub fn label(&self, v: NodeId) -> &str {
        &self.nodes[v.index()].label
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.nodes[v.index()].adjacency.len()
    }

    /// Iterates over all node ids in dense order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over the edges incident to `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.nodes[v.index()].adjacency.iter().map(move |&(w, e)| {
            let data = &self.edges[e.index()];
            EdgeRef {
                id: e,
                source: v,
                target: w,
                latency: data.latency,
                bandwidth: data.bandwidth,
            }
        })
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        self.edges.iter().enumerate().map(|(i, data)| EdgeRef {
            id: EdgeId::new(i),
            source: data.endpoints.0,
            target: data.endpoints.1,
            latency: data.latency,
            bandwidth: data.bandwidth,
        })
    }

    /// Looks up the edge between `u` and `v`, if present.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeRef> {
        let id = *self.edge_index.get(&Self::edge_key(u, v))?;
        let data = &self.edges[id.index()];
        Some(EdgeRef {
            id,
            source: data.endpoints.0,
            target: data.endpoints.1,
            latency: data.latency,
            bandwidth: data.bandwidth,
        })
    }

    /// Latency of the edge between `u` and `v`, if present.
    pub fn edge_latency(&self, u: NodeId, v: NodeId) -> Option<Latency> {
        self.find_edge(u, v).map(|e| e.latency)
    }

    /// Total latency summed over all edges (used in sanity checks and
    /// generator tests).
    pub fn total_latency(&self) -> f64 {
        self.edges.iter().map(|e| e.latency).sum()
    }

    /// Replaces the latency of the edge between `u` and `v`, returning the
    /// previous value.
    ///
    /// This is the one mutation the otherwise append-only substrate
    /// supports: substrate *events* (link failure, recovery, degradation)
    /// change link latencies while the node/edge structure — and with it
    /// every dense id — stays fixed. Unlike [`Graph::add_edge`], a latency
    /// of `f64::INFINITY` is accepted here: it marks a **failed** link,
    /// which shortest-path machinery treats exactly like an absent edge.
    /// `NaN` and negative latencies are rejected.
    ///
    /// Changing a latency changes [`Graph::fingerprint`], so checkpoints
    /// taken after an event only resume against a substrate with the same
    /// event history applied.
    pub fn set_edge_latency(
        &mut self,
        u: NodeId,
        v: NodeId,
        latency: Latency,
    ) -> Result<Latency, GraphError> {
        if latency.is_nan() || latency < 0.0 {
            return Err(GraphError::InvalidLatency(latency));
        }
        let id = self
            .edge_index
            .get(&Self::edge_key(u, v))
            .copied()
            .ok_or(GraphError::UnknownEdge(u, v))?;
        let old = self.edges[id.index()].latency;
        self.edges[id.index()].latency = latency;
        Ok(old)
    }

    /// Content fingerprint of the substrate: an FNV-1a hash over node
    /// strengths and every edge's endpoints, latency bits and bandwidth.
    ///
    /// Two graphs built by the same seeded generator hash identically, so
    /// the experiment layers use this to key distance-matrix caches and to
    /// record substrate provenance in result manifests without serializing
    /// the whole graph.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.nodes.len() as u64);
        for n in &self.nodes {
            mix(n.strength.to_bits());
        }
        mix(self.edges.len() as u64);
        for e in &self.edges {
            mix(e.endpoints.0.index() as u64);
            mix(e.endpoints.1.index() as u64);
            mix(e.latency.to_bits());
            mix(match e.bandwidth {
                Bandwidth::T1 => 1,
                Bandwidth::T2 => 2,
                Bandwidth::Custom(mbps) => mbps.to_bits(),
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        g.add_edge(a, b, 1.0, Bandwidth::T1).unwrap();
        g.add_edge(b, c, 2.0, Bandwidth::T2).unwrap();
        g.add_edge(a, c, 4.0, Bandwidth::T1).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn counts_and_strengths() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.strength(a), 1.0);
        assert_eq!(g.strength(b), 2.0);
        assert_eq!(g.strength(c), 3.0);
    }

    #[test]
    fn degree_and_neighbors() {
        let (g, a, b, _c) = triangle();
        assert_eq!(g.degree(a), 2);
        let mut ns: Vec<_> = g.neighbors(a).map(|e| e.target).collect();
        ns.sort();
        assert_eq!(ns, vec![b, NodeId::new(2)]);
        // neighbor view reports the querying node as source
        for e in g.neighbors(b) {
            assert_eq!(e.source, b);
        }
    }

    #[test]
    fn edge_lookup_is_symmetric() {
        let (g, a, b, _) = triangle();
        assert_eq!(g.edge_latency(a, b), Some(1.0));
        assert_eq!(g.edge_latency(b, a), Some(1.0));
        assert_eq!(g.edge_latency(a, NodeId::new(2)), Some(4.0));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        assert_eq!(
            g.add_edge(a, a, 1.0, Bandwidth::T1),
            Err(GraphError::SelfLoop(a))
        );
    }

    #[test]
    fn rejects_duplicate_edge_in_either_direction() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b, 1.0, Bandwidth::T1).unwrap();
        assert!(matches!(
            g.add_edge(a, b, 2.0, Bandwidth::T1),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        assert!(matches!(
            g.add_edge(b, a, 2.0, Bandwidth::T1),
            Err(GraphError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let ghost = NodeId::new(9);
        assert_eq!(
            g.add_edge(a, ghost, 1.0, Bandwidth::T1),
            Err(GraphError::UnknownNode(ghost))
        );
    }

    #[test]
    fn rejects_bad_latency_and_strength() {
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        assert!(matches!(
            g.add_edge(a, b, f64::NAN, Bandwidth::T1),
            Err(GraphError::InvalidLatency(_))
        ));
        assert!(matches!(
            g.add_edge(a, b, -0.5, Bandwidth::T1),
            Err(GraphError::InvalidLatency(_))
        ));
        assert!(matches!(
            g.try_add_node(0.0),
            Err(GraphError::InvalidStrength(_))
        ));
        assert!(matches!(
            g.try_add_node(f64::INFINITY),
            Err(GraphError::InvalidStrength(_))
        ));
    }

    #[test]
    fn labels() {
        let mut g = Graph::new();
        let a = g.add_labeled_node(1.0, "New York").unwrap();
        let b = g.add_node(1.0);
        assert_eq!(g.label(a), "New York");
        assert_eq!(g.label(b), "");
    }

    #[test]
    fn zero_latency_edges_allowed() {
        // Intra-PoP links in ISP topologies can have ~0 latency.
        let mut g = Graph::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        assert!(g.add_edge(a, b, 0.0, Bandwidth::T2).is_ok());
    }

    #[test]
    fn edges_iterator_yields_all() {
        let (g, ..) = triangle();
        assert_eq!(g.edges().count(), 3);
        let total: f64 = g.edges().map(|e| e.latency).sum();
        assert_eq!(total, 7.0);
        assert_eq!(g.total_latency(), 7.0);
    }

    #[test]
    fn set_edge_latency_mutates_and_guards() {
        let (mut g, a, b, _) = triangle();
        assert_eq!(g.set_edge_latency(a, b, 5.0), Ok(1.0));
        assert_eq!(g.edge_latency(b, a), Some(5.0));
        // A failed link is an infinite latency; restoring it round-trips.
        assert_eq!(g.set_edge_latency(b, a, f64::INFINITY), Ok(5.0));
        assert_eq!(g.edge_latency(a, b), Some(f64::INFINITY));
        assert_eq!(g.set_edge_latency(a, b, 1.0), Ok(f64::INFINITY));
        assert!(matches!(
            g.set_edge_latency(a, b, f64::NAN),
            Err(GraphError::InvalidLatency(_))
        ));
        assert!(matches!(
            g.set_edge_latency(a, b, -1.0),
            Err(GraphError::InvalidLatency(_))
        ));
        assert!(matches!(
            g.set_edge_latency(a, NodeId::new(9), 1.0),
            Err(GraphError::UnknownEdge(_, _))
        ));
    }

    #[test]
    fn set_edge_latency_changes_fingerprint_reversibly() {
        let (mut g, a, b, _) = triangle();
        let before = g.fingerprint();
        g.set_edge_latency(a, b, 3.0).unwrap();
        assert_ne!(before, g.fingerprint());
        g.set_edge_latency(a, b, 1.0).unwrap();
        assert_eq!(before, g.fingerprint());
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let (g1, ..) = triangle();
        let (g2, ..) = triangle();
        assert_eq!(g1.fingerprint(), g2.fingerprint());

        let mut g3 = g1.clone();
        let d = g3.add_node(1.0);
        assert_ne!(g1.fingerprint(), g3.fingerprint());
        g3.add_edge(NodeId::new(0), d, 9.0, Bandwidth::T2).unwrap();
        let with_edge = g3.fingerprint();

        // Same structure but a different latency must hash differently.
        let (mut g4, a, ..) = triangle();
        let d4 = g4.add_node(1.0);
        g4.add_edge(a, d4, 9.5, Bandwidth::T2).unwrap();
        assert_ne!(with_edge, g4.fingerprint());
    }
}
