//! Compressed sparse row (CSR) adjacency and the scratch-reusing Dijkstra
//! that runs on it.
//!
//! [`Graph`] stores adjacency as per-node `Vec<(NodeId, EdgeId)>` — ideal
//! for incremental construction, poor for traversal: every relaxation
//! chases two pointers (adjacency entry → edge record) across separately
//! allocated arrays. [`CsrAdjacency`] flattens the graph once into three
//! parallel arrays (`offsets`, `targets`, `weights`) so the relaxation
//! loop of one node is a single contiguous scan — the layout every
//! all-pairs source shares, read-only, across worker threads.
//!
//! [`DijkstraScratch`] owns the per-source working set (binary heap,
//! settled flags). One scratch per worker thread serves all of that
//! thread's sources, so an `n`-source all-pairs build performs `O(threads)`
//! heap allocations instead of `O(n)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::Graph;

/// Flattened read-only adjacency: the neighbors of node `u` live in
/// `targets[offsets[u]..offsets[u+1]]` with matching `weights`.
#[derive(Clone, Debug)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrAdjacency {
    /// Flattens `g` (both directions of every undirected edge) in
    /// `O(|V| + |E|)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` nodes or directed
    /// edges (the ids are packed into `u32` to halve the traversal
    /// footprint).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        assert!(n <= u32::MAX as usize, "CSR: too many nodes for u32 ids");
        let m2 = 2 * g.edge_count();
        assert!(m2 <= u32::MAX as usize, "CSR: too many edges for u32 ids");

        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m2);
        let mut weights = Vec::with_capacity(m2);
        offsets.push(0u32);
        for u in g.nodes() {
            for e in g.neighbors(u) {
                targets.push(e.target.index() as u32);
                weights.push(e.latency);
            }
            offsets.push(targets.len() as u32);
        }
        CsrAdjacency {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// The contiguous `(targets, weights)` rows of node `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }
}

/// Heap entry; `BinaryHeap` is a max-heap so ordering is reversed.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller distance = greater priority. Distances are
        // finite non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Reusable per-thread working set for [`dijkstra_into`].
pub struct DijkstraScratch {
    heap: BinaryHeap<HeapEntry>,
    settled: Vec<bool>,
}

impl DijkstraScratch {
    /// Scratch sized for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        DijkstraScratch {
            heap: BinaryHeap::with_capacity(n),
            settled: vec![false; n],
        }
    }
}

/// Runs Dijkstra from `source` over `csr`, writing all distances into
/// `dist` (`f64::INFINITY` = unreachable). `scratch` is reset here and can
/// be reused across any number of sources on the same graph.
///
/// # Panics
///
/// Panics if `dist` or `scratch` are not sized for `csr`'s node count.
pub fn dijkstra_into(
    csr: &CsrAdjacency,
    source: usize,
    dist: &mut [f64],
    scratch: &mut DijkstraScratch,
) {
    let n = csr.node_count();
    assert_eq!(dist.len(), n, "dijkstra_into: row size mismatch");
    assert_eq!(scratch.settled.len(), n, "dijkstra_into: scratch mismatch");

    dist.fill(f64::INFINITY);
    scratch.settled.fill(false);
    scratch.heap.clear();

    dist[source] = 0.0;
    scratch.heap.push(HeapEntry {
        dist: 0.0,
        node: source as u32,
    });

    while let Some(HeapEntry { dist: d, node: u }) = scratch.heap.pop() {
        let u = u as usize;
        if scratch.settled[u] {
            continue;
        }
        scratch.settled[u] = true;
        let (targets, weights) = csr.neighbors(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let v = v as usize;
            if scratch.settled[v] {
                continue;
            }
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                scratch.heap.push(HeapEntry {
                    dist: nd,
                    node: v as u32,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::shortest_paths;
    use crate::units::Bandwidth;
    use crate::NodeId;

    fn diamond() -> Graph {
        let mut g = Graph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(1.0)).collect();
        g.add_edge(n[0], n[1], 1.0, Bandwidth::T1).unwrap();
        g.add_edge(n[0], n[2], 2.0, Bandwidth::T1).unwrap();
        g.add_edge(n[1], n[3], 2.0, Bandwidth::T1).unwrap();
        g.add_edge(n[2], n[3], 0.5, Bandwidth::T1).unwrap();
        g
    }

    #[test]
    fn csr_mirrors_adjacency() {
        let g = diamond();
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.node_count(), 4);
        for u in g.nodes() {
            assert_eq!(csr.degree(u.index()), g.degree(u));
            let (targets, weights) = csr.neighbors(u.index());
            let expect: Vec<(u32, f64)> = g
                .neighbors(u)
                .map(|e| (e.target.index() as u32, e.latency))
                .collect();
            let got: Vec<(u32, f64)> = targets
                .iter()
                .copied()
                .zip(weights.iter().copied())
                .collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn dijkstra_matches_reference_and_reuses_scratch() {
        let g = diamond();
        let csr = CsrAdjacency::from_graph(&g);
        let mut scratch = DijkstraScratch::new(4);
        let mut row = vec![0.0; 4];
        // Same scratch across all sources must not leak state.
        for src in 0..4 {
            dijkstra_into(&csr, src, &mut row, &mut scratch);
            let reference = shortest_paths(&g, NodeId::new(src));
            for (v, &got) in row.iter().enumerate() {
                let expect = reference.distance(NodeId::new(v)).unwrap();
                assert_eq!(got.to_bits(), expect.to_bits(), "src {src} v {v}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut g = Graph::new();
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        g.add_node(1.0);
        let csr = CsrAdjacency::from_graph(&g);
        let mut row = vec![9.0];
        dijkstra_into(&csr, 0, &mut row, &mut DijkstraScratch::new(1));
        assert_eq!(row, vec![0.0]);
    }
}
