//! # flexserve-topology
//!
//! Realistic ISP substrate topologies for the flexible server allocation
//! experiments.
//!
//! The paper evaluates on "more realistic graphs taken from the Rocketfuel
//! project (including the corresponding latencies for the access cost)",
//! specifically the AT&T backbone **AS-7018**. The original Rocketfuel data
//! files cannot be redistributed nor fetched in this environment, so this
//! crate provides two things (substitution documented in `docs/DESIGN.md` §5):
//!
//! 1. [`rocketfuel`] — a parser for Rocketfuel-style weighted ISP map files,
//!    so the real data can be dropped in when available;
//! 2. [`as7018`] — a deterministic *synthetic* AT&T-like PoP-level topology:
//!    real AT&T backbone city coordinates, hierarchical backbone + access
//!    structure, and great-circle-derived latencies (fiber propagation at
//!    2/3 the speed of light, the standard ISP latency model). It exercises
//!    the same code paths as the real data: an ISP-scale graph with
//!    heterogeneous metric latencies.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod as7018;
pub mod geo;
pub mod rocketfuel;

pub use as7018::{as7018_like, As7018Config};
pub use geo::{haversine_km, propagation_latency_ms};
pub use rocketfuel::{parse_rocketfuel_weights, RocketfuelError};
