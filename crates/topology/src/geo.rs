//! Geographic helpers: great-circle distance and fiber propagation latency.

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Propagation speed of light in optical fiber, in km per millisecond
/// (≈ 2/3 of c: 200 000 km/s).
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// Great-circle (haversine) distance between two (latitude, longitude)
/// points, in kilometres. Arguments in degrees.
pub fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// One-way propagation latency in milliseconds over a fiber link following
/// (approximately) the great circle between the two points. A routing
/// inflation factor of 1.3 accounts for real fiber paths not following
/// great circles (Rocketfuel's own path-inflation work motivates this).
pub fn propagation_latency_ms(a: (f64, f64), b: (f64, f64)) -> f64 {
    const INFLATION: f64 = 1.3;
    haversine_km(a, b) * INFLATION / FIBER_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    const NYC: (f64, f64) = (40.7128, -74.0060);
    const LA: (f64, f64) = (34.0522, -118.2437);
    const SF: (f64, f64) = (37.7749, -122.4194);

    #[test]
    fn nyc_la_distance_is_about_3940km() {
        let d = haversine_km(NYC, LA);
        assert!((d - 3940.0).abs() < 50.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        assert_eq!(haversine_km(NYC, NYC), 0.0);
        let ab = haversine_km(NYC, SF);
        let ba = haversine_km(SF, NYC);
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn coast_to_coast_latency_plausible() {
        // NYC <-> LA one-way fiber latency is ~25-30 ms in practice.
        let l = propagation_latency_ms(NYC, LA);
        assert!((20.0..35.0).contains(&l), "got {l}");
    }

    #[test]
    fn triangle_inequality() {
        let ab = haversine_km(NYC, SF);
        let bc = haversine_km(SF, LA);
        let ac = haversine_km(NYC, LA);
        assert!(ac <= ab + bc + 1e-9);
    }
}
