//! Synthetic AT&T-like backbone (AS-7018) substrate.
//!
//! The paper's final experiment runs on "the Rocketfuel network AS-7018 of
//! ATT under the time zone scenario". The Rocketfuel dataset is not
//! redistributable, so this module generates a *deterministic* stand-in
//! with the properties the experiment actually exercises:
//!
//! * PoP-level scale (~115 nodes, matching the published AS-7018 PoP count),
//! * hierarchical structure: a continental backbone mesh plus per-city
//!   access PoPs,
//! * heterogeneous, *metric* latencies derived from real city coordinates
//!   (great-circle distance at fiber propagation speed with 1.3× routing
//!   inflation),
//! * heterogeneous bandwidths: fat backbone pipes, thin T1/T2 access links.
//!
//! The generator takes no RNG: the same call always yields byte-identical
//! topologies, so experiment randomness lives entirely in the workloads.

use flexserve_graph::{Bandwidth, Graph, GraphError, NodeId};

use crate::geo::propagation_latency_ms;

/// One backbone city: name, (lat, lon), number of attached access PoPs, and
/// indices (into [`BACKBONE_CITIES`]) of its backbone neighbors.
struct City {
    name: &'static str,
    coord: (f64, f64),
    access_pops: usize,
    neighbors: &'static [usize],
}

/// AT&T IP backbone cities (public PoP locations circa 2010) with a
/// hand-curated adjacency that follows the well-known continental fiber
/// routes (two coastal north–south chains, three east–west trunks).
/// Neighbor lists only mention each undirected edge once (from the lower
/// index).
const BACKBONE_CITIES: &[City] = &[
    // 0
    City {
        name: "New York, NY",
        coord: (40.7128, -74.0060),
        access_pops: 5,
        neighbors: &[1, 2, 5, 7],
    },
    // 1
    City {
        name: "Cambridge, MA",
        coord: (42.3736, -71.1097),
        access_pops: 3,
        neighbors: &[2],
    },
    // 2
    City {
        name: "Philadelphia, PA",
        coord: (39.9526, -75.1652),
        access_pops: 3,
        neighbors: &[3],
    },
    // 3
    City {
        name: "Washington, DC",
        coord: (38.9072, -77.0369),
        access_pops: 4,
        neighbors: &[4, 5, 8],
    },
    // 4
    City {
        name: "Atlanta, GA",
        coord: (33.7490, -84.3880),
        access_pops: 4,
        neighbors: &[6, 9, 10],
    },
    // 5
    City {
        name: "Chicago, IL",
        coord: (41.8781, -87.6298),
        access_pops: 5,
        neighbors: &[7, 8, 11, 12, 13],
    },
    // 6
    City {
        name: "Orlando, FL",
        coord: (28.5383, -81.3792),
        access_pops: 3,
        neighbors: &[10],
    },
    // 7
    City {
        name: "Detroit, MI",
        coord: (42.3314, -83.0458),
        access_pops: 2,
        neighbors: &[8],
    },
    // 8
    City {
        name: "Cleveland, OH",
        coord: (41.4993, -81.6944),
        access_pops: 2,
        neighbors: &[],
    },
    // 9
    City {
        name: "Nashville, TN",
        coord: (36.1627, -86.7816),
        access_pops: 2,
        neighbors: &[11, 14],
    },
    // 10
    City {
        name: "Miami, FL",
        coord: (25.7617, -80.1918),
        access_pops: 3,
        neighbors: &[14],
    },
    // 11
    City {
        name: "St. Louis, MO",
        coord: (38.6270, -90.1994),
        access_pops: 3,
        neighbors: &[12, 15],
    },
    // 12
    City {
        name: "Kansas City, MO",
        coord: (39.0997, -94.5786),
        access_pops: 2,
        neighbors: &[16],
    },
    // 13
    City {
        name: "Minneapolis, MN",
        coord: (44.9778, -93.2650),
        access_pops: 2,
        neighbors: &[16, 17],
    },
    // 14
    City {
        name: "New Orleans, LA",
        coord: (29.9511, -90.0715),
        access_pops: 2,
        neighbors: &[15],
    },
    // 15
    City {
        name: "Dallas, TX",
        coord: (32.7767, -96.7970),
        access_pops: 5,
        neighbors: &[16, 18, 19, 20],
    },
    // 16
    City {
        name: "Denver, CO",
        coord: (39.7392, -104.9903),
        access_pops: 3,
        neighbors: &[17, 21],
    },
    // 17
    City {
        name: "Salt Lake City, UT",
        coord: (40.7608, -111.8910),
        access_pops: 2,
        neighbors: &[21, 22],
    },
    // 18
    City {
        name: "Houston, TX",
        coord: (29.7604, -95.3698),
        access_pops: 3,
        neighbors: &[19],
    },
    // 19
    City {
        name: "San Antonio, TX",
        coord: (29.4241, -98.4936),
        access_pops: 2,
        neighbors: &[20],
    },
    // 20
    City {
        name: "Phoenix, AZ",
        coord: (33.4484, -112.0740),
        access_pops: 3,
        neighbors: &[23, 24],
    },
    // 21
    City {
        name: "Sacramento, CA",
        coord: (38.5816, -121.4944),
        access_pops: 2,
        neighbors: &[22, 25],
    },
    // 22
    City {
        name: "Seattle, WA",
        coord: (47.6062, -122.3321),
        access_pops: 3,
        neighbors: &[26],
    },
    // 23
    City {
        name: "San Diego, CA",
        coord: (32.7157, -117.1611),
        access_pops: 2,
        neighbors: &[24],
    },
    // 24
    City {
        name: "Los Angeles, CA",
        coord: (34.0522, -118.2437),
        access_pops: 5,
        neighbors: &[25],
    },
    // 25
    City {
        name: "San Francisco, CA",
        coord: (37.7749, -122.4194),
        access_pops: 4,
        neighbors: &[26],
    },
    // 26
    City {
        name: "Portland, OR",
        coord: (45.5152, -122.6784),
        access_pops: 2,
        neighbors: &[],
    },
];

/// Long-haul express links (beyond the chain structure above) present in
/// AT&T's backbone: coast-to-coast and diagonal trunks.
const EXPRESS_LINKS: &[(usize, usize)] = &[
    (0, 5),   // NYC - Chicago (already in neighbors; kept once, see dedup)
    (0, 25),  // NYC - San Francisco
    (0, 24),  // NYC - Los Angeles
    (3, 15),  // DC - Dallas
    (4, 15),  // Atlanta - Dallas
    (5, 16),  // Chicago - Denver
    (5, 22),  // Chicago - Seattle
    (15, 24), // Dallas - Los Angeles
    (4, 24),  // Atlanta - Los Angeles
];

/// Configuration for the synthetic AS-7018-like generator.
#[derive(Clone, Debug)]
pub struct As7018Config {
    /// Strength `ω(v)` of backbone PoP nodes (they host big servers).
    pub backbone_strength: f64,
    /// Strength of access PoP nodes.
    pub access_strength: f64,
    /// Latency of an access link in ms (intra-metro fiber + equipment).
    /// Access PoP `i` of a city gets `access_latency_ms * (1 + i/4)` so
    /// access links are not all identical.
    pub access_latency_ms: f64,
    /// Bandwidth of backbone links in Mbit/s (default OC-12, 622 Mbit/s).
    pub backbone_mbps: f64,
}

impl Default for As7018Config {
    fn default() -> Self {
        As7018Config {
            backbone_strength: 4.0,
            access_strength: 1.0,
            access_latency_ms: 0.8,
            backbone_mbps: 622.08,
        }
    }
}

/// Generates the synthetic AS-7018-like substrate.
///
/// Layout: backbone city `i` gets `NodeId` `i`; access PoPs follow in city
/// order. Returns the graph together with the list of backbone node ids.
pub fn as7018_like(cfg: &As7018Config) -> Result<(Graph, Vec<NodeId>), GraphError> {
    let ncities = BACKBONE_CITIES.len();
    let total_access: usize = BACKBONE_CITIES.iter().map(|c| c.access_pops).sum();
    let mut g = Graph::with_capacity(ncities + total_access, ncities * 3 + total_access);

    let mut backbone = Vec::with_capacity(ncities);
    for city in BACKBONE_CITIES {
        backbone.push(g.add_labeled_node(cfg.backbone_strength, city.name)?);
    }

    // Backbone chain edges.
    for (i, city) in BACKBONE_CITIES.iter().enumerate() {
        for &j in city.neighbors {
            add_backbone_edge(&mut g, cfg, &backbone, i, j)?;
        }
    }
    // Express links (skip ones already present).
    for &(i, j) in EXPRESS_LINKS {
        if g.find_edge(backbone[i], backbone[j]).is_none() {
            add_backbone_edge(&mut g, cfg, &backbone, i, j)?;
        }
    }

    // Access PoPs.
    for (i, city) in BACKBONE_CITIES.iter().enumerate() {
        for a in 0..city.access_pops {
            let label = format!("{} (access {})", city.name, a + 1);
            let pop = g.add_labeled_node(cfg.access_strength, label)?;
            let lat = cfg.access_latency_ms * (1.0 + a as f64 / 4.0);
            let bw = if a % 2 == 0 {
                Bandwidth::T1
            } else {
                Bandwidth::T2
            };
            g.add_edge(backbone[i], pop, lat, bw)?;
        }
    }

    Ok((g, backbone))
}

fn add_backbone_edge(
    g: &mut Graph,
    cfg: &As7018Config,
    backbone: &[NodeId],
    i: usize,
    j: usize,
) -> Result<(), GraphError> {
    let lat = propagation_latency_ms(BACKBONE_CITIES[i].coord, BACKBONE_CITIES[j].coord);
    g.add_edge(
        backbone[i],
        backbone[j],
        lat,
        Bandwidth::Custom(cfg.backbone_mbps),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::connectivity::is_connected;
    use flexserve_graph::metrics::metrics;
    use flexserve_graph::DistanceMatrix;

    #[test]
    fn scale_matches_as7018() {
        let (g, backbone) = as7018_like(&As7018Config::default()).unwrap();
        assert_eq!(backbone.len(), 27);
        // ~115 PoPs like the real AS-7018 map
        assert!(
            (100..=130).contains(&g.node_count()),
            "got {} nodes",
            g.node_count()
        );
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic() {
        let (g1, _) = as7018_like(&As7018Config::default()).unwrap();
        let (g2, _) = as7018_like(&As7018Config::default()).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(g1.total_latency(), g2.total_latency());
    }

    #[test]
    fn latencies_are_metric_and_plausible() {
        let (g, backbone) = as7018_like(&As7018Config::default()).unwrap();
        let m = DistanceMatrix::build(&g);
        // NYC (0) to San Francisco (25): one-way ~27 ms; with routing
        // anything between 20 and 45 is plausible.
        let d = m.get(backbone[0], backbone[25]);
        assert!((20.0..45.0).contains(&d), "NYC->SF = {d}");
        // east coast short hop: NYC -> Philadelphia < 5 ms
        let d2 = m.get(backbone[0], backbone[2]);
        assert!(d2 < 5.0, "NYC->PHL = {d2}");
    }

    #[test]
    fn center_is_an_interior_city() {
        let (g, backbone) = as7018_like(&As7018Config::default()).unwrap();
        let met = metrics(&g);
        // The graph center must be a backbone node (access PoPs are leaves).
        assert!(backbone.contains(&met.center));
        assert!(met.connected);
        // Continental diameter: tens of ms, not thousands.
        assert!(
            met.diameter > 30.0 && met.diameter < 120.0,
            "diameter {}",
            met.diameter
        );
    }

    #[test]
    fn backbone_nodes_are_stronger() {
        let cfg = As7018Config::default();
        let (g, backbone) = as7018_like(&cfg).unwrap();
        for &b in &backbone {
            assert_eq!(g.strength(b), cfg.backbone_strength);
        }
        // any non-backbone node has access strength
        let access = g
            .nodes()
            .find(|v| !backbone.contains(v))
            .expect("there are access PoPs");
        assert_eq!(g.strength(access), cfg.access_strength);
    }

    #[test]
    fn access_pops_are_leaves_on_their_city() {
        let (g, backbone) = as7018_like(&As7018Config::default()).unwrap();
        for v in g.nodes() {
            if backbone.contains(&v) {
                continue;
            }
            assert_eq!(g.degree(v), 1, "access PoP {v} should be a leaf");
            let e = g.neighbors(v).next().unwrap();
            assert!(backbone.contains(&e.target));
        }
    }
}
