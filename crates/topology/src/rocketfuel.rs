//! Parser for Rocketfuel-style weighted ISP maps.
//!
//! The Rocketfuel project ("Measuring ISP Topologies with Rocketfuel",
//! Spring et al., ToN 2004) published inferred PoP-level ISP maps. The
//! *weights* files have one edge per line:
//!
//! ```text
//! # comment
//! <node-a> <node-b> <weight>
//! ```
//!
//! where node names may contain spaces when quoted or use the
//! `asn:City, ST` convention without internal whitespace ambiguity — in the
//! published `weights` files the name fields are separated from the weight
//! by whitespace and the names themselves contain no tabs. We accept both
//! tab-separated (`a\tb\tw`) and the whitespace form where the *last* token
//! is the weight and the first two quoted/comma-joined tokens are names.
//!
//! Weights are interpreted as link latencies in milliseconds (the paper:
//! "including the corresponding latencies for the access cost").
//! Bandwidths are assigned T1/T2 round-robin deterministically (the raw maps
//! carry no capacity data; the paper randomizes — we keep it deterministic
//! so a parsed topology is reproducible byte-for-byte).

use std::collections::HashMap;
use std::fmt;

use flexserve_graph::{Bandwidth, Graph, GraphError, NodeId};

/// Errors produced while parsing a Rocketfuel weights file.
#[derive(Debug, Clone, PartialEq)]
pub enum RocketfuelError {
    /// A line could not be split into two names and a weight.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The weight field failed to parse as a non-negative float.
    BadWeight {
        /// 1-based line number.
        line: usize,
        /// The offending weight token.
        token: String,
    },
    /// The underlying graph construction failed (e.g. duplicate edge with
    /// conflicting weight is mapped to this).
    Graph(GraphError),
}

impl fmt::Display for RocketfuelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RocketfuelError::MalformedLine { line, content } => {
                write!(f, "line {line}: malformed edge line: {content:?}")
            }
            RocketfuelError::BadWeight { line, token } => {
                write!(f, "line {line}: bad weight {token:?}")
            }
            RocketfuelError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for RocketfuelError {}

impl From<GraphError> for RocketfuelError {
    fn from(e: GraphError) -> Self {
        RocketfuelError::Graph(e)
    }
}

/// Parses Rocketfuel weights-format text into a substrate [`Graph`].
///
/// * Lines starting with `#` (after trimming) and blank lines are skipped.
/// * Duplicate edges are tolerated when the weight matches the first
///   occurrence (the published maps list some edges in both directions);
///   conflicting duplicates keep the *first* weight.
/// * All nodes get strength 1.0 (the maps carry no node capacities).
pub fn parse_rocketfuel_weights(text: &str) -> Result<Graph, RocketfuelError> {
    let mut g = Graph::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut edge_no = 0usize;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (a, b, w) = split_edge_line(line).ok_or_else(|| RocketfuelError::MalformedLine {
            line: line_no,
            content: line.to_string(),
        })?;
        let weight: f64 = w.parse().map_err(|_| RocketfuelError::BadWeight {
            line: line_no,
            token: w.to_string(),
        })?;
        if !weight.is_finite() || weight < 0.0 {
            return Err(RocketfuelError::BadWeight {
                line: line_no,
                token: w.to_string(),
            });
        }
        let ida = intern(&mut g, &mut ids, a)?;
        let idb = intern(&mut g, &mut ids, b)?;
        if ida == idb {
            // Self-loops appear in some raw files; skip them.
            continue;
        }
        if g.find_edge(ida, idb).is_some() {
            continue; // duplicate listing (reverse direction)
        }
        let bw = if edge_no.is_multiple_of(2) {
            Bandwidth::T1
        } else {
            Bandwidth::T2
        };
        edge_no += 1;
        g.add_edge(ida, idb, weight, bw)?;
    }
    Ok(g)
}

fn intern(
    g: &mut Graph,
    ids: &mut HashMap<String, NodeId>,
    name: &str,
) -> Result<NodeId, RocketfuelError> {
    if let Some(&id) = ids.get(name) {
        return Ok(id);
    }
    let id = g.add_labeled_node(1.0, name)?;
    ids.insert(name.to_string(), id);
    Ok(id)
}

/// Splits one edge line into (name-a, name-b, weight-token).
///
/// Supported shapes:
/// * `a<TAB>b<TAB>w`
/// * `"name a" "name b" w` (quoted names)
/// * `a b w` (simple whitespace, names without spaces)
fn split_edge_line(line: &str) -> Option<(&str, &str, &str)> {
    // Tab-separated first: names may contain spaces.
    let tabs: Vec<&str> = line.split('\t').map(str::trim).collect();
    if tabs.len() == 3 && !tabs[0].is_empty() && !tabs[1].is_empty() {
        return Some((tabs[0], tabs[1], tabs[2]));
    }
    // Quoted names.
    if let Some(rest) = line.strip_prefix('"') {
        let end_a = rest.find('"')?;
        let a = &rest[..end_a];
        let rest = rest[end_a + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix('"') {
            let end_b = stripped.find('"')?;
            let b = &stripped[..end_b];
            let w = stripped[end_b + 1..].trim();
            if !w.is_empty() {
                return Some((a, b, w));
            }
        }
        return None;
    }
    // Plain whitespace: exactly three tokens.
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() == 3 {
        return Some((toks[0], toks[1], toks[2]));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::connectivity::is_connected;

    #[test]
    fn parses_simple_triplets() {
        let g = parse_rocketfuel_weights("a b 1.5\nb c 2\n# comment\n\nc a 3\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn parses_tab_separated_city_names() {
        let text = "7018:New York, NY\t7018:Washington, DC\t3.2\n7018:Washington, DC\t7018:Atlanta, GA\t7.1\n";
        let g = parse_rocketfuel_weights(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.label(NodeId::new(0)), "7018:New York, NY");
    }

    #[test]
    fn parses_quoted_names() {
        let text = r#""New York, NY" "Los Angeles, CA" 30.5"#;
        let g = parse_rocketfuel_weights(text).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_latency(NodeId::new(0), NodeId::new(1)), Some(30.5));
    }

    #[test]
    fn duplicate_and_reverse_edges_collapse() {
        let g = parse_rocketfuel_weights("a b 1\nb a 1\na b 1\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_skipped() {
        let g = parse_rocketfuel_weights("a a 5\na b 1\n").unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn malformed_line_reports_number() {
        let err = parse_rocketfuel_weights("a b 1\nnonsense\n").unwrap_err();
        match err {
            RocketfuelError::MalformedLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn bad_weight_reports_token() {
        let err = parse_rocketfuel_weights("a b heavy\n").unwrap_err();
        match err {
            RocketfuelError::BadWeight { token, .. } => assert_eq!(token, "heavy"),
            other => panic!("unexpected: {other}"),
        }
        assert!(parse_rocketfuel_weights("a b -3\n").is_err());
        assert!(parse_rocketfuel_weights("a b inf\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_rocketfuel_weights("# only comments\n\n").unwrap();
        assert_eq!(g.node_count(), 0);
    }
}
