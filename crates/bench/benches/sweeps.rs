//! Before/after sweep-cell benches: one 20-seed experiment cell (the unit
//! of every figure sweep) through the rayon-parallel `average` runner and
//! the serial reference. `crates/bench/src/bin/perf_report.rs` records the
//! same comparison into `BENCH_sweeps.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use flexserve_bench::{sweep_cell, SWEEP_SEEDS};
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::{average, average_serial};

fn bench_sweep_cell(c: &mut Criterion) {
    let env = ExperimentEnv::erdos_renyi(100, 3);
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let mut group = c.benchmark_group("sweep_cell_20seeds");
    group.sample_size(10);
    group.bench_function("parallel", |b| {
        b.iter(|| average(&seeds, |seed| sweep_cell(&env, seed)))
    });
    group.bench_function("serial", |b| {
        b.iter(|| average_serial(&seeds, |seed| sweep_cell(&env, seed)))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_cell);
criterion_main!(benches);
