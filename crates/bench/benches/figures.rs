//! One bench per paper figure/table: each runs the corresponding
//! experiment pipeline on the quick profile, so the time to regenerate any
//! figure is tracked like any other performance number. (The *values* the
//! experiments produce are checked by the experiment integration tests and
//! mapped in docs/FIGURES.md; here we watch the cost of producing them.)

use criterion::{criterion_group, criterion_main, Criterion};

use flexserve_experiments::figures as f;
use flexserve_experiments::figures::Profile;

macro_rules! fig_bench {
    ($fn_name:ident, $fig:ident) => {
        fn $fn_name(c: &mut Criterion) {
            std::env::set_var("FLEXSERVE_SILENT", "1");
            let mut group = c.benchmark_group("figures");
            group.sample_size(10);
            group.bench_function(stringify!($fig), |b| b.iter(|| f::$fig(Profile::Quick)));
            group.finish();
        }
    };
}

fig_bench!(bench_fig01, fig01);
fig_bench!(bench_fig02, fig02);
fig_bench!(bench_fig03, fig03);
fig_bench!(bench_fig04, fig04);
fig_bench!(bench_fig05, fig05);
fig_bench!(bench_fig06, fig06);
fig_bench!(bench_fig07, fig07);
fig_bench!(bench_fig08, fig08);
fig_bench!(bench_fig09, fig09);
fig_bench!(bench_fig10, fig10);
fig_bench!(bench_fig11, fig11);
fig_bench!(bench_fig12, fig12);
fig_bench!(bench_fig13, fig13);
fig_bench!(bench_fig14, fig14);
fig_bench!(bench_fig15, fig15);
fig_bench!(bench_fig16, fig16);
fig_bench!(bench_fig17, fig17);
fig_bench!(bench_fig18, fig18);
fig_bench!(bench_fig19, fig19);
fig_bench!(bench_table1, table1);

criterion_group!(
    benches,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig05,
    bench_fig06,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_fig18,
    bench_fig19,
    bench_table1
);
criterion_main!(benches);
