//! OPT dynamic-program scaling: configuration-space growth with substrate
//! size and linear growth with horizon length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flexserve_core::{initial_center, optimal_plan};
use flexserve_graph::gen::{line, GenConfig};
use flexserve_graph::DistanceMatrix;
use flexserve_sim::{CostParams, LoadModel, SimContext};
use flexserve_workload::{record, CommuterScenario, LoadVariant, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn line_trace(n: usize, rounds: u64) -> (flexserve_graph::Graph, DistanceMatrix, Trace) {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = line(n, &GenConfig::default(), &mut rng).unwrap();
    let m = DistanceMatrix::build(&g);
    let mut scenario = CommuterScenario::with_matrix(&g, &m, 4, 5, LoadVariant::Dynamic, 3);
    let trace = record(&mut scenario, rounds);
    (g, m, trace)
}

fn bench_opt_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_dp_vs_n_100rounds");
    group.sample_size(10);
    for n in [3usize, 4, 5, 6] {
        let (g, m, trace) = line_trace(n, 100);
        let params = CostParams::default().with_max_servers(4);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let start = initial_center(&ctx);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ctx, |b, ctx| {
            b.iter(|| optimal_plan(ctx, &trace, &start))
        });
    }
    group.finish();
}

fn bench_opt_vs_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_dp_vs_horizon_n5");
    group.sample_size(10);
    for rounds in [50u64, 100, 200, 400] {
        let (g, m, trace) = line_trace(5, rounds);
        let params = CostParams::default().with_max_servers(4);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let start = initial_center(&ctx);
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &ctx, |b, ctx| {
            b.iter(|| optimal_plan(ctx, &trace, &start))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_opt_vs_n, bench_opt_vs_horizon);
criterion_main!(benches);
