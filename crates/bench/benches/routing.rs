//! Request-routing benches: nearest vs load-aware policies across batch
//! sizes and fleet sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flexserve_bench::bench_env;
use flexserve_graph::NodeId;
use flexserve_sim::{route, CostParams, LoadModel, RoutingPolicy, SimContext};
use flexserve_workload::RoundRequests;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn batch(n_nodes: usize, size: usize, seed: u64) -> RoundRequests {
    let mut rng = SmallRng::seed_from_u64(seed);
    RoundRequests::new(
        (0..size)
            .map(|_| NodeId::new(rng.gen_range(0..n_nodes)))
            .collect(),
    )
}

fn servers(n_nodes: usize, k: usize) -> Vec<NodeId> {
    (0..k).map(|i| NodeId::new(i * (n_nodes / k))).collect()
}

fn bench_routing_policies(c: &mut Criterion) {
    let env = bench_env(300, 4);
    let n = env.graph.node_count();
    let mut group = c.benchmark_group("routing");
    for &(reqs, k) in &[(50usize, 2usize), (200, 4), (500, 8)] {
        let b_ = batch(n, reqs, 9);
        let s = servers(n, k);
        for policy in [RoutingPolicy::Nearest, RoutingPolicy::LoadAware] {
            let ctx = SimContext::new(
                &env.graph,
                &env.matrix,
                CostParams::default(),
                LoadModel::Linear,
            )
            .with_routing(policy);
            let label = format!("{policy:?}/r{reqs}k{k}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &ctx, |bch, ctx| {
                bch.iter(|| route(ctx, &s, &b_))
            });
        }
    }
    group.finish();
}

fn bench_load_models(c: &mut Criterion) {
    let env = bench_env(300, 4);
    let n = env.graph.node_count();
    let b_ = batch(n, 200, 9);
    let s = servers(n, 4);
    let mut group = c.benchmark_group("routing_load_models");
    for load in [LoadModel::None, LoadModel::Linear, LoadModel::Quadratic] {
        let ctx = SimContext::new(&env.graph, &env.matrix, CostParams::default(), load);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{load}")),
            &ctx,
            |bch, ctx| bch.iter(|| route(ctx, &s, &b_)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing_policies, bench_load_models);
criterion_main!(benches);
