//! Strategy benches: full short runs of each algorithm on identical
//! traces, measuring decision-making overhead (the dominant per-round
//! cost is the best-candidate search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flexserve_bench::bench_env;
use flexserve_core::{initial_center, offstat, OnBr, OnConf, OnTh, StaticStrategy};
use flexserve_sim::{run_online, CostParams, LoadModel, SimContext};
use flexserve_workload::{record, CommuterScenario, LoadVariant, Trace};

fn make_trace(env: &flexserve_bench::BenchEnv, rounds: u64) -> Trace {
    let mut scenario =
        CommuterScenario::with_matrix(&env.graph, &env.matrix, 8, 5, LoadVariant::Dynamic, 7);
    record(&mut scenario, rounds)
}

fn bench_online_strategies(c: &mut Criterion) {
    let env = bench_env(200, 5);
    let trace = make_trace(&env, 100);
    let ctx = SimContext::new(
        &env.graph,
        &env.matrix,
        CostParams::default(),
        LoadModel::Linear,
    );
    let start = initial_center(&ctx);

    let mut group = c.benchmark_group("strategy_runs_100rounds_n200");
    group.sample_size(10);
    group.bench_function("STATIC", |b| {
        b.iter(|| run_online(&ctx, &trace, &mut StaticStrategy::new(), start.clone()))
    });
    group.bench_function("ONTH", |b| {
        b.iter(|| run_online(&ctx, &trace, &mut OnTh::new(), start.clone()))
    });
    group.bench_function("ONBR-fixed", |b| {
        b.iter(|| run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone()))
    });
    group.bench_function("ONBR-dyn", |b| {
        b.iter(|| run_online(&ctx, &trace, &mut OnBr::dynamic(&ctx), start.clone()))
    });
    group.finish();
}

fn bench_onconf_small(c: &mut Criterion) {
    // ONCONF only runs on small instances: n=12, k=2 -> 78 configurations.
    let env = bench_env(12, 6);
    let trace = make_trace(&env, 100);
    let params = CostParams::default().with_max_servers(2);
    let ctx = SimContext::new(&env.graph, &env.matrix, params, LoadModel::Linear);
    let start = initial_center(&ctx);
    c.bench_function("ONCONF_100rounds_n12k2", |b| {
        b.iter(|| {
            run_online(
                &ctx,
                &trace,
                &mut OnConf::new(&ctx, &start, 1),
                start.clone(),
            )
        })
    });
}

fn bench_offstat_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("offstat");
    group.sample_size(10);
    for n in [100usize, 300] {
        let env = bench_env(n, 7);
        let trace = make_trace(&env, 200);
        let params = CostParams::default().with_max_servers(8);
        let ctx = SimContext::new(&env.graph, &env.matrix, params, LoadModel::Linear);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ctx, |b, ctx| {
            b.iter(|| offstat(ctx, &trace))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_online_strategies,
    bench_onconf_small,
    bench_offstat_scaling
);
criterion_main!(benches);
