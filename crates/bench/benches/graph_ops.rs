//! Substrate-layer benches: generation, shortest paths, APSP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flexserve_bench::bench_env;
use flexserve_graph::gen::{erdos_renyi, GenConfig};
use flexserve_graph::path::shortest_paths;
use flexserve_graph::{DistanceMatrix, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("erdos_renyi_generation");
    for n in [100usize, 500, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                erdos_renyi(n, 0.01, &GenConfig::default(), &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra_single_source");
    for n in [100usize, 500, 1000] {
        let env = bench_env(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &env, |b, env| {
            b.iter(|| shortest_paths(&env.graph, NodeId::new(0)))
        });
    }
    group.finish();
}

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp_matrix");
    group.sample_size(10);
    for n in [100usize, 300, 600] {
        let env = bench_env(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &env, |b, env| {
            b.iter(|| DistanceMatrix::build(&env.graph))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_dijkstra, bench_apsp);
criterion_main!(benches);
