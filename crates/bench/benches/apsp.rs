//! Before/after APSP benches: the rayon-parallel CSR `DistanceMatrix::build`
//! against the single-thread CSR reference, on the 500-node Waxman
//! substrate named by the perf acceptance criteria (plus smaller sizes for
//! scaling context). `crates/bench/src/bin/perf_report.rs` records the same
//! comparison into `BENCH_apsp.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flexserve_bench::waxman_env;
use flexserve_graph::DistanceMatrix;

fn bench_apsp_parallel_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp_waxman");
    group.sample_size(10);
    for n in [100usize, 250, 500] {
        let g = waxman_env(n, 7);
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| DistanceMatrix::build(g))
        });
        group.bench_with_input(BenchmarkId::new("serial", n), &g, |b, g| {
            b.iter(|| DistanceMatrix::build_serial(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp_parallel_vs_serial);
criterion_main!(benches);
