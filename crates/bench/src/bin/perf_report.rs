//! Before/after perf harness: times the serial reference against the
//! rayon-parallel implementation of the two hot paths this PR
//! parallelized — the all-pairs `DistanceMatrix` build (500-node Waxman)
//! and one 20-seed sweep cell — and records the results as
//! `BENCH_apsp.json` and `BENCH_sweeps.json` in the repository root.
//!
//! Usage: `cargo run --release -p flexserve-bench --bin perf_report`.
//!
//! Speedup scales with the worker count (`RAYON_NUM_THREADS`, default =
//! available cores); the JSON records the thread count alongside the
//! timings so numbers from different machines are comparable.

use std::io::Write as _;
use std::time::Instant;

use flexserve_bench::{sweep_cell, waxman_env, SWEEP_SEEDS};
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::{average, average_serial};
use flexserve_graph::DistanceMatrix;

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn write_report(path: &str, name: &str, serial_s: f64, parallel_s: f64, detail: &str) {
    let threads = rayon::current_num_threads();
    let speedup = serial_s / parallel_s;
    let json = format!(
        "{{\n  \"bench\": \"{name}\",\n  \"detail\": \"{detail}\",\n  \"threads\": {threads},\n  \"serial_seconds\": {serial_s:.6},\n  \"parallel_seconds\": {parallel_s:.6},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    let mut f = std::fs::File::create(path).expect("create report");
    f.write_all(json.as_bytes()).expect("write report");
    println!(
        "{name}: serial {serial_s:.3}s, parallel {parallel_s:.3}s, speedup {speedup:.2}x \
         on {threads} thread(s) -> {path}"
    );
}

fn main() {
    let reps = 5;

    // --- APSP: 500-node Waxman ----------------------------------------
    let g = waxman_env(500, 7);
    let serial = time_median(reps, || {
        std::hint::black_box(DistanceMatrix::build_serial(&g));
    });
    let parallel = time_median(reps, || {
        std::hint::black_box(DistanceMatrix::build(&g));
    });
    write_report(
        "BENCH_apsp.json",
        "apsp_build",
        serial,
        parallel,
        "DistanceMatrix::build on a 500-node Waxman substrate (CSR + per-thread scratch)",
    );

    // --- Sweep cell: 20 seeds -----------------------------------------
    let env = ExperimentEnv::erdos_renyi(100, 3);
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let serial = time_median(reps, || {
        std::hint::black_box(average_serial(&seeds, |seed| sweep_cell(&env, seed)));
    });
    let parallel = time_median(reps, || {
        std::hint::black_box(average(&seeds, |seed| sweep_cell(&env, seed)));
    });
    write_report(
        "BENCH_sweeps.json",
        "sweep_cell",
        serial,
        parallel,
        "20-seed ONTH commuter cell (ER-100 substrate, 240 rounds) through runner::average",
    );
}
