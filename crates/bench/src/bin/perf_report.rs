//! Before/after perf harness: times the serial reference against the
//! optimized implementation of the measured hot paths — the all-pairs
//! `DistanceMatrix` build (500-node Waxman), one 20-seed sweep cell, a
//! cold-vs-warm substrate fetch through the distance-matrix cache, and
//! the batch-vs-stepped game loop (`run_online` vs `SimSession::step`,
//! the serving hot path) — and records the results as `BENCH_apsp.json`,
//! `BENCH_sweeps.json`, `BENCH_cache.json` and `BENCH_serve.json` in the
//! repository root (schema: docs/BENCHMARKS.md).
//!
//! Usage: `cargo run --release -p flexserve-bench --bin perf_report`.
//!
//! Speedup scales with the worker count (`RAYON_NUM_THREADS`, default =
//! available cores); the JSON records the thread count alongside the
//! timings so numbers from different machines are comparable.

use std::io::Write as _;
use std::time::Instant;

use flexserve_bench::{sweep_cell, waxman_env, SWEEP_SEEDS};
use flexserve_core::{initial_center, OnTh};
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::{average, average_serial, DistCache, TopologySpec};
use flexserve_graph::DistanceMatrix;
use flexserve_sim::{run_online, CostParams, LoadModel, SimSession};
use flexserve_workload::{record, CommuterScenario, LoadVariant};

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn write_report(path: &str, name: &str, serial_s: f64, parallel_s: f64, detail: &str) {
    let threads = rayon::current_num_threads();
    let speedup = serial_s / parallel_s;
    // 9 decimals: warm cache fetches are sub-microsecond, and the schema
    // promises speedup == serial_seconds / parallel_seconds is
    // reproducible from the recorded values.
    let json = format!(
        "{{\n  \"bench\": \"{name}\",\n  \"detail\": \"{detail}\",\n  \"threads\": {threads},\n  \"serial_seconds\": {serial_s:.9},\n  \"parallel_seconds\": {parallel_s:.9},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    let mut f = std::fs::File::create(path).expect("create report");
    f.write_all(json.as_bytes()).expect("write report");
    println!(
        "{name}: serial {serial_s:.3}s, parallel {parallel_s:.3}s, speedup {speedup:.2}x \
         on {threads} thread(s) -> {path}"
    );
}

fn main() {
    let reps = 5;

    // --- APSP: 500-node Waxman ----------------------------------------
    let g = waxman_env(500, 7);
    let serial = time_median(reps, || {
        std::hint::black_box(DistanceMatrix::build_serial(&g));
    });
    let parallel = time_median(reps, || {
        std::hint::black_box(DistanceMatrix::build(&g));
    });
    write_report(
        "BENCH_apsp.json",
        "apsp_build",
        serial,
        parallel,
        "DistanceMatrix::build on a 500-node Waxman substrate (CSR + per-thread scratch)",
    );

    // --- Sweep cell: 20 seeds -----------------------------------------
    let env = ExperimentEnv::erdos_renyi(100, 3);
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let serial = time_median(reps, || {
        std::hint::black_box(average_serial(&seeds, |seed| sweep_cell(&env, seed)));
    });
    let parallel = time_median(reps, || {
        std::hint::black_box(average(&seeds, |seed| sweep_cell(&env, seed)));
    });
    write_report(
        "BENCH_sweeps.json",
        "sweep_cell",
        serial,
        parallel,
        "20-seed ONTH commuter cell (ER-100 substrate, 240 rounds) through runner::average",
    );

    // --- Distance-matrix cache: cold vs warm substrate fetch ------------
    // The multi-figure redundancy the cache removes: the same (topology,
    // seed) substrate requested again (as every extra algorithm or
    // workload on one substrate does) costs a map lookup instead of a
    // full graph build + APSP.
    let cache = DistCache::with_capacity_bytes(DistCache::DEFAULT_CAPACITY_BYTES);
    let spec: TopologySpec = "er:300".parse().expect("valid spec");
    let key = spec.to_string();
    let cold = time_median(reps, || {
        cache.clear();
        std::hint::black_box(
            cache
                .get_or_build(&key, 11, || spec.build(11))
                .expect("er:300 builds"),
        );
    });
    cache.clear();
    cache
        .get_or_build(&key, 11, || spec.build(11))
        .expect("er:300 builds");
    let warm = time_median(reps, || {
        std::hint::black_box(
            cache
                .get_or_build(&key, 11, || spec.build(11))
                .expect("er:300 builds"),
        );
    });
    write_report(
        "BENCH_cache.json",
        "dist_cache",
        cold,
        warm,
        "ER-300 substrate fetch through DistCache: cold build+APSP vs warm cache hit",
    );

    // --- Serving: batch loop vs stepped SimSession ----------------------
    // `run_online` is a thin wrapper over `SimSession::step`, so the
    // stepper must cost the same per round as the batch loop it replaced
    // (speedup ~1.0 = the serving refactor is free). The recorded
    // `parallel_seconds / rounds` is the per-round `/step` latency floor
    // of the `flexserve serve` daemon.
    let serve_env = ExperimentEnv::erdos_renyi(100, 3);
    let serve_rounds: u64 = 240;
    let ctx = serve_env.context(CostParams::default(), LoadModel::Linear);
    let mut scenario = CommuterScenario::with_matrix(
        &serve_env.graph,
        &serve_env.matrix,
        8,
        5,
        LoadVariant::Dynamic,
        11,
    );
    let trace = record(&mut scenario, serve_rounds);
    let batch = time_median(reps, || {
        let mut strat = OnTh::new();
        std::hint::black_box(run_online(&ctx, &trace, &mut strat, initial_center(&ctx)));
    });
    let stepped = time_median(reps, || {
        let mut session = SimSession::new(ctx, OnTh::new(), initial_center(&ctx));
        for round in trace.iter() {
            std::hint::black_box(session.step(round));
        }
    });
    println!(
        "per-round SimSession::step latency: {:.1} us over {serve_rounds} rounds",
        stepped / serve_rounds as f64 * 1e6
    );
    write_report(
        "BENCH_serve.json",
        "serve_step",
        batch,
        stepped,
        "ONTH commuter run (ER-100, 240 rounds): batch run_online vs stepped \
         SimSession::step (per-round serve latency = parallel_seconds / 240)",
    );
}
