//! Before/after perf harness: times the serial reference against the
//! optimized implementation of the measured hot paths — the all-pairs
//! `DistanceMatrix` build plus its incremental single-event repair
//! (500-node Waxman), one 20-seed sweep cell, the strategy hot path's
//! one-pass transposed candidate scan vs the naive per-candidate
//! window rescan (same 500-node Waxman, 240-round commuter window),
//! a cold-vs-warm substrate
//! fetch through the distance-matrix cache, the batch-vs-stepped game
//! loop (`run_online` vs `SimSession::step`),
//! sequential-vs-concurrent multi-session stepping through the serve
//! daemon's `SessionManager`, the cluster-mode routing tax
//! (stepping a session directly against its worker vs through the
//! `flexserve route` tier), the batched-stepping win of the serve
//! daemon (`{"n": k}` batch bodies vs one round per request over real
//! TCP) and the event-driven front end's connection scaling (a
//! subprocess daemon holding thousands of idle keep-alive connections
//! on its fixed reactor pool) — and records the results as
//! `BENCH_apsp.json` (an array: full build, repair-vs-rebuild),
//! `BENCH_sweeps.json` (an array: sweep cell, candidate scan, trace
//! sharing), `BENCH_trace.json` (packed-vs-JSONL trace
//! ingestion, see docs/TRACES.md), `BENCH_cache.json` and
//! `BENCH_serve.json` (an array of the five serving benches) in the
//! repository root (schema: docs/BENCHMARKS.md).
//!
//! Usage: `cargo run --release -p flexserve-bench --bin perf_report`.
//!
//! Speedup scales with the worker count (`RAYON_NUM_THREADS`, default =
//! available cores); the JSON records the thread count alongside the
//! timings so numbers from different machines are comparable.

use std::io::Write as _;
use std::time::Instant;

use flexserve_bench::{sweep_cell, waxman_env, SWEEP_SEEDS};
use flexserve_core::{access_cost_window, initial_center, EpochWindow, OnTh, WindowIndex};
use flexserve_experiments::serve::route::proxy::http_call;
use flexserve_experiments::serve::{route, serve_on, ServeOptions, SessionConfig, SessionManager};
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::{
    average, average_serial, run_algorithm, Algorithm, DistCache, TopologySpec, TraceCache,
    TraceKey,
};
use flexserve_graph::{DistanceMatrix, NodeId};
use flexserve_sim::{run_online, CostParams, LoadModel, SimContext, SimSession};
use flexserve_workload::{
    file_source, pack_jsonl_file, record, CommuterScenario, LoadVariant, PackedReplay, PackedTrace,
    RequestSource, DEFAULT_WINDOW_ROUNDS,
};

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One report object. `extra` is appended verbatim after the standard
/// fields (`,\n  "key": value` pairs), keeping every entry a flat object.
fn entry_json(name: &str, serial_s: f64, parallel_s: f64, detail: &str, extra: &str) -> String {
    let threads = rayon::current_num_threads();
    let speedup = serial_s / parallel_s;
    // 9 decimals: warm cache fetches are sub-microsecond, and the schema
    // promises speedup == serial_seconds / parallel_seconds is
    // reproducible from the recorded values.
    format!(
        "{{\n  \"bench\": \"{name}\",\n  \"detail\": \"{detail}\",\n  \"threads\": {threads},\n  \"serial_seconds\": {serial_s:.9},\n  \"parallel_seconds\": {parallel_s:.9},\n  \"speedup\": {speedup:.3}{extra}\n}}"
    )
}

fn write_file(path: &str, content: &str) {
    let mut f = std::fs::File::create(path).expect("create report");
    f.write_all(content.as_bytes()).expect("write report");
}

fn announce(path: &str, name: &str, serial_s: f64, parallel_s: f64) {
    println!(
        "{name}: serial {serial_s:.3}s, parallel {parallel_s:.3}s, speedup {:.2}x \
         on {} thread(s) -> {path}",
        serial_s / parallel_s,
        rayon::current_num_threads()
    );
}

fn write_report(path: &str, name: &str, serial_s: f64, parallel_s: f64, detail: &str) {
    let mut json = entry_json(name, serial_s, parallel_s, detail, "");
    json.push('\n');
    write_file(path, &json);
    announce(path, name, serial_s, parallel_s);
}

fn main() {
    let reps = 5;

    // --- APSP: 500-node Waxman ----------------------------------------
    let g = waxman_env(500, 7);
    let serial = time_median(reps, || {
        std::hint::black_box(DistanceMatrix::build_serial(&g));
    });
    let parallel = time_median(reps, || {
        std::hint::black_box(DistanceMatrix::build(&g));
    });
    let apsp_entry = entry_json(
        "apsp_build",
        serial,
        parallel,
        "DistanceMatrix::build on a 500-node Waxman substrate (CSR + per-thread scratch)",
        "",
    );
    announce("BENCH_apsp.json", "apsp_build", serial, parallel);

    // --- APSP repair vs rebuild: single link event ----------------------
    // The substrate-event plane's hot path: one link fails mid-run and
    // the distance matrix must catch up. "Serial" is the full rebuild
    // every event would otherwise pay; "parallel" is the incremental
    // `DistanceMatrix::repair`, re-running Dijkstra only from the dirty
    // source rows (proptest-pinned bitwise-identical to the rebuild).
    let edge = g.edges().next().expect("waxman substrate has edges");
    let mut failed = g.clone();
    failed
        .set_edge_latency(edge.source, edge.target, f64::INFINITY)
        .expect("edge exists");
    let update = flexserve_graph::EdgeUpdate {
        a: edge.source,
        b: edge.target,
        old_latency: edge.latency,
        new_latency: f64::INFINITY,
    };
    let full = DistanceMatrix::build(&g);
    let rows_repaired = {
        let mut m = full.clone();
        m.repair(&failed, &[update])
    };
    let rebuild = time_median(reps, || {
        std::hint::black_box(DistanceMatrix::build(&failed));
    });
    // The pre-event matrices are cloned outside the timed closure: repair
    // mutates in place, and the clone is not part of the repaired path's
    // cost (a live session already owns its matrix).
    let mut pool: Vec<DistanceMatrix> = (0..reps).map(|_| full.clone()).collect();
    let repair = time_median(reps, || {
        let mut m = pool.pop().expect("one pre-cloned matrix per rep");
        std::hint::black_box(m.repair(&failed, &[update]));
    });
    let extra = format!(
        ",\n  \"rows_repaired\": {rows_repaired},\n  \"rows_total\": {}",
        g.node_count()
    );
    let repair_entry = entry_json(
        "repair_vs_rebuild",
        rebuild,
        repair,
        "single link failure on the 500-node Waxman substrate: full \
         DistanceMatrix::build vs incremental repair of the dirty source rows",
        &extra,
    );
    announce("BENCH_apsp.json", "repair_vs_rebuild", rebuild, repair);
    write_file(
        "BENCH_apsp.json",
        &format!("[\n{apsp_entry},\n{repair_entry}\n]\n"),
    );

    // --- Sweep cell: 20 seeds -----------------------------------------
    let env = ExperimentEnv::erdos_renyi(100, 3);
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let serial = time_median(reps, || {
        std::hint::black_box(average_serial(&seeds, |seed| sweep_cell(&env, seed)));
    });
    let parallel = time_median(reps, || {
        std::hint::black_box(average(&seeds, |seed| sweep_cell(&env, seed)));
    });
    let sweep_entry = entry_json(
        "sweep_cell",
        serial,
        parallel,
        "20-seed ONTH commuter cell (ER-100 substrate, 240 rounds) through runner::average",
        "",
    );
    announce("BENCH_sweeps.json", "sweep_cell", serial, parallel);

    // --- Trace sharing: 3-strategy figure cell --------------------------
    // The shared-trace evaluation plane's saving: a figure cell evaluates
    // k strategies on the *same* demand, which used to be regenerated and
    // re-recorded per strategy. "Serial" is the independent plane (each
    // strategy records its own workload); "parallel" is the shared plane
    // (one recording through a TraceCache, every strategy reads the
    // Arc-held rounds). The simulation itself still runs per strategy, so
    // the bound is k·(record+run) / (record + k·run).
    const TRACE_ALGS: [Algorithm; 3] = [Algorithm::OnTh, Algorithm::OnBrFixed, Algorithm::OnBrDyn];
    const TRACE_ROUNDS: u64 = 240;
    let trace_ctx = env.context(CostParams::default(), LoadModel::Linear);
    let record_fresh = || {
        let mut scenario =
            CommuterScenario::with_matrix(&env.graph, &env.matrix, 8, 5, LoadVariant::Dynamic, 11);
        record(&mut scenario, TRACE_ROUNDS)
    };
    let independent = time_median(reps, || {
        for &alg in &TRACE_ALGS {
            let trace = record_fresh();
            std::hint::black_box(run_algorithm(&trace_ctx, &trace, alg).total());
        }
    });
    let shared = time_median(reps, || {
        let cache = TraceCache::with_capacity_bytes(TraceCache::DEFAULT_CAPACITY_BYTES);
        let key = TraceKey {
            substrate: env.graph.fingerprint(),
            workload: "commuter-dynamic".into(),
            t_periods: 8,
            lambda: 5,
            rounds: TRACE_ROUNDS,
            seed: 11,
        };
        // Every strategy fetches, as grouped cells do: the first records,
        // the rest hit.
        for &alg in &TRACE_ALGS {
            let trace = cache.get_or_record(key.clone(), record_fresh);
            std::hint::black_box(run_algorithm(&trace_ctx, &trace, alg).total());
        }
    });
    // The removed k× term on its own: one demand materialization.
    let record_s = time_median(reps, || {
        std::hint::black_box(record_fresh());
    });
    let extra = format!(
        ",\n  \"strategies\": {},\n  \"rounds\": {TRACE_ROUNDS},\n  \
         \"record_seconds\": {record_s:.9}",
        TRACE_ALGS.len()
    );
    let trace_entry = entry_json(
        "trace_sharing",
        independent,
        shared,
        "3-strategy figure cell (ONTH+ONBR-fixed+ONBR-dyn, ER-100 commuter-dynamic, \
         240 rounds): per-strategy demand recording vs one TraceCache-shared trace",
        &extra,
    );
    announce("BENCH_sweeps.json", "trace_sharing", independent, shared);

    // --- Candidate scan: naive rescan vs one-pass transposed scoring -----
    // The strategy hot path (docs/ARCHITECTURE.md "strategy hot path"):
    // scoring every A ∪ {v} addition candidate over an epoch window.
    // "Serial" is the naive per-candidate rescan every strategy used to
    // pay — access_cost_window on the extended active set, once per
    // inactive node; "parallel" is the WindowIndex one-pass scan:
    // rebuild (included, strategies pay it per epoch) + one transposed
    // sweep scoring all candidates. Both are timed on an ONTH-shaped
    // cell — the 500-node Waxman substrate from the APSP bench, a
    // 240-round commuter window, 8 active servers — and the harness
    // asserts the argmin (v, cost) agrees before reporting (the scan is
    // proptest-pinned bitwise in crates/core/tests/candidate_scan.rs).
    const SCAN_ROUNDS: u64 = 240;
    const SCAN_SERVERS: usize = 8;
    let scan_ctx = SimContext::new(&g, &full, CostParams::default(), LoadModel::Linear);
    let scan_window = {
        let mut scenario = CommuterScenario::with_matrix(&g, &full, 8, 5, LoadVariant::Dynamic, 11);
        let trace = record(&mut scenario, SCAN_ROUNDS);
        let mut w = EpochWindow::new();
        for round in trace.iter() {
            w.push(round);
        }
        w
    };
    let active: Vec<NodeId> = (0..SCAN_SERVERS)
        .map(|i| NodeId::new(i * g.node_count() / SCAN_SERVERS))
        .collect();
    let candidates: Vec<NodeId> = g.nodes().filter(|v| !active.contains(v)).collect();
    let naive_scan = || -> (NodeId, f64) {
        let mut with_v = active.clone();
        with_v.push(candidates[0]);
        let mut best: Option<(NodeId, f64)> = None;
        for &v in &candidates {
            *with_v.last_mut().unwrap() = v;
            let cost = access_cost_window(&scan_ctx, &with_v, &scan_window);
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((v, cost));
            }
        }
        best.expect("at least one candidate")
    };
    let one_pass = |index: &mut WindowIndex, scores: &mut Vec<f64>, counts: &mut Vec<usize>| {
        index.rebuild(&scan_ctx, &active, &scan_window);
        index.score_all_additions(&scan_ctx, &candidates, scores, counts);
        let mut best: Option<(NodeId, f64)> = None;
        for (j, &v) in candidates.iter().enumerate() {
            if best.is_none_or(|(_, c)| scores[j] < c) {
                best = Some((v, scores[j]));
            }
        }
        best.expect("at least one candidate")
    };
    let mut index = WindowIndex::new();
    let (mut scores, mut counts) = (Vec::new(), Vec::new());
    let naive_best = naive_scan();
    let scan_best = one_pass(&mut index, &mut scores, &mut counts);
    assert_eq!(naive_best.0, scan_best.0, "scan argmin drifted");
    assert_eq!(
        naive_best.1.to_bits(),
        scan_best.1.to_bits(),
        "scan cost not bit-identical"
    );
    let naive_s = time_median(reps, || {
        std::hint::black_box(naive_scan());
    });
    let scan_s = time_median(reps, || {
        std::hint::black_box(one_pass(&mut index, &mut scores, &mut counts));
    });
    let extra = format!(
        ",\n  \"candidates\": {},\n  \"rounds\": {SCAN_ROUNDS},\n  \"servers\": {SCAN_SERVERS}",
        candidates.len()
    );
    let scan_entry = entry_json(
        "candidate_scan",
        naive_s,
        scan_s,
        "epoch candidate scoring on a 500-node Waxman ONTH cell (240-round \
         commuter window, 8 servers): naive per-candidate access_cost_window \
         rescan vs WindowIndex rebuild + one-pass transposed scan (bitwise \
         argmin asserted)",
        &extra,
    );
    announce("BENCH_sweeps.json", "candidate_scan", naive_s, scan_s);
    write_file(
        "BENCH_sweeps.json",
        &format!("[\n{sweep_entry},\n{scan_entry},\n{trace_entry}\n]\n"),
    );

    // --- Packed trace plane: JSONL parse vs packed replay ---------------
    // The trace-ingestion saving of `flexserve trace pack`
    // (docs/TRACES.md): one million synthetic rounds written as JSONL,
    // packed once into `flexserve-trace-v1`, then fully consumed through
    // both replay sources. "Serial" is the JSONL parse (per-line JSON +
    // fold); "parallel" is the packed replay (mmap + varint frames).
    // The extra fields record the pack ratio and the resident bytes of
    // one DEFAULT_WINDOW_ROUNDS replay window — the O(window) footprint
    // a million-round serve session actually holds.
    const PACK_ROUNDS: u64 = 1_000_000;
    const PACK_UNIVERSE: usize = 100;
    let tmp = |name: &str| {
        std::env::temp_dir()
            .join(format!("flexserve-perf-{name}"))
            .display()
            .to_string()
    };
    let jsonl_path = tmp("trace.jsonl");
    let pack_path = tmp("trace.ftr");
    {
        // Stream-generate the JSONL (never materialize the trace): a few
        // deterministic origins per round, like a recorded demand file.
        let file = std::fs::File::create(&jsonl_path).expect("create bench jsonl");
        let mut out = std::io::BufWriter::new(file);
        for t in 0..PACK_ROUNDS {
            let a = (t * 7) % PACK_UNIVERSE as u64;
            let b = (t * 13 + 5) % PACK_UNIVERSE as u64;
            writeln!(out, "{{\"t\":{t},\"origins\":[{a},{a},{b},{}]}}", t % 10)
                .expect("write bench jsonl");
        }
        out.flush().expect("flush bench jsonl");
    }
    let pack_s = time_median(reps, || {
        std::hint::black_box(pack_jsonl_file(&jsonl_path, &pack_path).expect("pack bench jsonl"));
    });
    let jsonl_bytes = std::fs::metadata(&jsonl_path).expect("jsonl meta").len();
    let packed_bytes = std::fs::metadata(&pack_path).expect("pack meta").len();
    let consume = |source: &mut dyn RequestSource| {
        let mut rounds = 0u64;
        while let Some(round) = source.next_round().expect("replay round") {
            std::hint::black_box(&round);
            rounds += 1;
        }
        assert_eq!(rounds, PACK_ROUNDS);
    };
    let jsonl_parse = time_median(reps, || {
        let mut source = file_source(&jsonl_path, PACK_UNIVERSE).expect("open bench jsonl");
        consume(&mut source);
    });
    let packed_replay = time_median(reps, || {
        let mut source = PackedReplay::open(&pack_path, PACK_UNIVERSE).expect("open bench pack");
        consume(&mut source);
    });
    let resident_window_bytes = PackedTrace::open(&pack_path)
        .expect("open bench pack")
        .window(PACK_ROUNDS / 2, DEFAULT_WINDOW_ROUNDS)
        .expect("bench window")
        .memory_bytes();
    println!(
        "trace pack: {jsonl_bytes} JSONL bytes -> {packed_bytes} packed ({:.1}x), \
         one {DEFAULT_WINDOW_ROUNDS}-round window resident = {resident_window_bytes} bytes",
        jsonl_bytes as f64 / packed_bytes as f64
    );
    let extra = format!(
        ",\n  \"rounds\": {PACK_ROUNDS},\n  \"jsonl_bytes\": {jsonl_bytes},\n  \
         \"packed_bytes\": {packed_bytes},\n  \"pack_ratio\": {:.3},\n  \
         \"pack_seconds\": {pack_s:.9},\n  \"window_rounds\": {DEFAULT_WINDOW_ROUNDS},\n  \
         \"resident_window_bytes\": {resident_window_bytes}",
        jsonl_bytes as f64 / packed_bytes as f64
    );
    let pack_entry = entry_json(
        "trace_pack",
        jsonl_parse,
        packed_replay,
        "one million synthetic rounds consumed end to end: JSONL parse \
         (file_source) vs flexserve-trace-v1 packed replay (PackedReplay, \
         mmap + varint frames); extra fields record the pack ratio and the \
         resident bytes of one default replay window",
        &extra,
    );
    announce("BENCH_trace.json", "trace_pack", jsonl_parse, packed_replay);
    write_file("BENCH_trace.json", &format!("[\n{pack_entry}\n]\n"));
    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&pack_path).ok();

    // --- Distance-matrix cache: cold vs warm substrate fetch ------------
    // The multi-figure redundancy the cache removes: the same (topology,
    // seed) substrate requested again (as every extra algorithm or
    // workload on one substrate does) costs a map lookup instead of a
    // full graph build + APSP.
    let cache = DistCache::with_capacity_bytes(DistCache::DEFAULT_CAPACITY_BYTES);
    let spec: TopologySpec = "er:300".parse().expect("valid spec");
    let key = spec.to_string();
    let cold = time_median(reps, || {
        cache.clear();
        std::hint::black_box(
            cache
                .get_or_build(&key, 11, || spec.build(11))
                .expect("er:300 builds"),
        );
    });
    cache.clear();
    cache
        .get_or_build(&key, 11, || spec.build(11))
        .expect("er:300 builds");
    let warm = time_median(reps, || {
        std::hint::black_box(
            cache
                .get_or_build(&key, 11, || spec.build(11))
                .expect("er:300 builds"),
        );
    });
    write_report(
        "BENCH_cache.json",
        "dist_cache",
        cold,
        warm,
        "ER-300 substrate fetch through DistCache: cold build+APSP vs warm cache hit",
    );

    // --- Serving: batch loop vs stepped SimSession ----------------------
    // `run_online` is a thin wrapper over `SimSession::step`, so the
    // stepper must cost the same per round as the batch loop it replaced
    // (speedup ~1.0 = the serving refactor is free). The recorded
    // `parallel_seconds / rounds` is the per-round `/step` latency floor
    // of the `flexserve serve` daemon.
    let serve_env = ExperimentEnv::erdos_renyi(100, 3);
    let serve_rounds: u64 = 240;
    let ctx = serve_env.context(CostParams::default(), LoadModel::Linear);
    let mut scenario = CommuterScenario::with_matrix(
        &serve_env.graph,
        &serve_env.matrix,
        8,
        5,
        LoadVariant::Dynamic,
        11,
    );
    let trace = record(&mut scenario, serve_rounds);
    let batch = time_median(reps, || {
        let mut strat = OnTh::new();
        std::hint::black_box(run_online(&ctx, &trace, &mut strat, initial_center(&ctx)));
    });
    let stepped = time_median(reps, || {
        let mut session = SimSession::new(ctx, OnTh::new(), initial_center(&ctx));
        for round in trace.iter() {
            std::hint::black_box(session.step(round));
        }
    });
    println!(
        "per-round SimSession::step latency: {:.1} us over {serve_rounds} rounds",
        stepped / serve_rounds as f64 * 1e6
    );
    let step_entry = entry_json(
        "serve_step",
        batch,
        stepped,
        "ONTH commuter run (ER-100, 240 rounds): batch run_online vs stepped \
         SimSession::step (per-round serve latency = parallel_seconds / 240)",
        "",
    );
    announce("BENCH_serve.json", "serve_step", batch, stepped);

    // --- Serving: multi-session throughput through the SessionManager ---
    // The serve daemon's concurrency claim, measured: 4 sessions on the
    // same cached ER-100 substrate, each stepped SESSION_ROUNDS rounds
    // through SessionManager::step (the full actor-channel serving path),
    // once one session after another ("serial") and once from 4
    // concurrent driver threads, as the HTTP worker pool would
    // ("parallel"). Sessions share no mutable state, so the concurrent
    // aggregate should scale with cores.
    const SESSIONS: usize = 4;
    const SESSION_ROUNDS: u64 = 240;
    let session_args: Vec<String> = [
        "topo=er:100",
        "wl=commuter-dynamic",
        "strat=onth",
        "rounds=240",
        "seed=3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let run_sessions = |concurrent: bool| -> f64 {
        let manager = SessionManager::new(SESSIONS);
        let names: Vec<String> = (0..SESSIONS).map(|i| format!("bench-{i}")).collect();
        for name in &names {
            let cfg = SessionConfig::parse(&session_args, name).expect("session args");
            manager.create(name, cfg).expect("session creation");
        }
        let t = Instant::now();
        if concurrent {
            std::thread::scope(|scope| {
                for name in &names {
                    scope.spawn(|| {
                        for _ in 0..SESSION_ROUNDS {
                            manager.step(name, "").expect("step");
                        }
                    });
                }
            });
        } else {
            for name in &names {
                for _ in 0..SESSION_ROUNDS {
                    manager.step(name, "").expect("step");
                }
            }
        }
        let secs = t.elapsed().as_secs_f64();
        manager.shutdown_all();
        secs
    };
    let median = |mut samples: Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    let sequential = median((0..reps).map(|_| run_sessions(false)).collect());
    let concurrent = median((0..reps).map(|_| run_sessions(true)).collect());
    let total_steps = (SESSIONS as u64 * SESSION_ROUNDS) as f64;
    println!(
        "multi-session aggregate: {:.0} steps/s sequential, {:.0} steps/s over \
         {SESSIONS} concurrent sessions",
        total_steps / sequential,
        total_steps / concurrent
    );
    let extra = format!(
        ",\n  \"sessions\": {SESSIONS},\n  \"rounds_per_session\": {SESSION_ROUNDS},\n  \
         \"steps_per_sec_sequential\": {:.1},\n  \"steps_per_sec_concurrent\": {:.1}",
        total_steps / sequential,
        total_steps / concurrent
    );
    let sessions_entry = entry_json(
        "serve_sessions",
        sequential,
        concurrent,
        "4 ONTH commuter sessions (shared ER-100 substrate, 240 rounds each) \
         through SessionManager::step: one-after-another vs 4 concurrent \
         driver threads (aggregate steps/sec in the extra fields)",
        &extra,
    );
    announce("BENCH_serve.json", "serve_sessions", sequential, concurrent);

    // --- Serving: cluster-mode routing tax -------------------------------
    // What `flexserve route` costs per request: the same session stepped
    // over real TCP, once directly against its serve worker ("serial")
    // and once through a router fronting that worker ("parallel" — one
    // placement lookup plus one proxied hop on top, so the speedup is
    // expected below 1.0; the entry bounds the tax). Explicit-body steps
    // keep the measurement independent of the session's source cap.
    const ROUTE_ROUNDS: u64 = 240;
    let proxy_timeout = std::time::Duration::from_secs(5);
    let ck = |name: &str| {
        std::env::temp_dir()
            .join(format!("flexserve-perf-{name}.json"))
            .display()
            .to_string()
    };
    let worker_listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind bench worker");
    let worker_addr = format!(
        "127.0.0.1:{}",
        worker_listener.local_addr().expect("worker addr").port()
    );
    let worker_args: Vec<String> = [
        "topo=er:100".to_string(),
        "wl=commuter-dynamic".to_string(),
        "strat=onth".to_string(),
        "rounds=240".to_string(),
        "seed=3".to_string(),
        format!("checkpoint={}", ck("route-default")),
    ]
    .to_vec();
    let worker_thread = std::thread::spawn(move || {
        let opts = ServeOptions::parse(&worker_args).expect("worker args");
        serve_on(worker_listener, &opts).expect("bench worker");
    });
    let router_listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind bench router");
    let router_addr = format!(
        "127.0.0.1:{}",
        router_listener.local_addr().expect("router addr").port()
    );
    let route_args: Vec<String> = vec![
        format!("workers={worker_addr}"),
        // keep the health loop out of the timed window
        "health-interval=60".to_string(),
    ];
    let router_thread = std::thread::spawn(move || {
        let opts = route::RouteOptions::parse(&route_args).expect("route args");
        route::run_on(router_listener, &opts).expect("bench router");
    });
    let create = format!(
        "{{\"name\": \"route-bench\", \"args\": [\"topo=er:100\", \"wl=commuter-dynamic\", \
         \"strat=onth\", \"rounds=240\", \"seed=3\", \"checkpoint={}\"]}}",
        ck("route-bench")
    );
    let (status, body) =
        http_call(&router_addr, "POST", "/sessions", &create, proxy_timeout).expect("create");
    assert_eq!(status, 200, "create via router: {body}");
    let round = "{\"origins\": [3, 17]}";
    let step_path = "/sessions/route-bench/step";
    let step_loop = |addr: &str| {
        for _ in 0..ROUTE_ROUNDS {
            let (status, body) =
                http_call(addr, "POST", step_path, round, proxy_timeout).expect("step");
            assert_eq!(status, 200, "step via {addr}: {body}");
        }
    };
    let direct = time_median(reps, || step_loop(&worker_addr));
    let routed = time_median(reps, || step_loop(&router_addr));
    println!(
        "routing tax: {:.1} us/step direct, {:.1} us/step through the router",
        direct / ROUTE_ROUNDS as f64 * 1e6,
        routed / ROUTE_ROUNDS as f64 * 1e6
    );
    let extra = format!(
        ",\n  \"rounds\": {ROUTE_ROUNDS},\n  \"steps_per_sec_direct\": {:.1},\n  \
         \"steps_per_sec_routed\": {:.1}",
        ROUTE_ROUNDS as f64 / direct,
        ROUTE_ROUNDS as f64 / routed
    );
    let route_entry = entry_json(
        "route_overhead",
        direct,
        routed,
        "one ONTH commuter session (ER-100) stepped 240 rounds over TCP: \
         directly against its serve worker vs through the flexserve route \
         tier (per-request routing tax; speedup below 1.0 expected)",
        &extra,
    );
    announce("BENCH_serve.json", "route_overhead", direct, routed);
    let (status, _) =
        http_call(&router_addr, "POST", "/shutdown", "", proxy_timeout).expect("router shutdown");
    assert_eq!(status, 200);
    let (status, _) =
        http_call(&worker_addr, "POST", "/shutdown", "", proxy_timeout).expect("worker shutdown");
    assert_eq!(status, 200);
    router_thread.join().expect("router thread");
    worker_thread.join().expect("worker thread");

    // --- Serving: batched stepping over real TCP -------------------------
    // What the `{"n": k}` batch body buys: on a cell whose simulation step
    // is cheap (unit-line:8, ~1-2 us), a single-round `POST /step` is
    // dominated by HTTP framing plus the actor-channel hop. "Serial" steps
    // BATCHED_TOTAL source-driven rounds one request per round (over a
    // warm keep-alive connection); "parallel" steps the same number of
    // rounds in BATCH_SIZE-round batches — one request and one channel
    // hop per batch, bit-identical bodies (tests/serve_batch.rs).
    const BATCH_SIZE: u64 = 256;
    const BATCHED_TOTAL: u64 = 1024;
    let batch_listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind batch bench");
    let batch_addr = format!(
        "127.0.0.1:{}",
        batch_listener.local_addr().expect("batch addr").port()
    );
    let batch_args: Vec<String> = [
        "topo=unit-line:8".to_string(),
        "wl=uniform:req=3".to_string(),
        "strat=onth".to_string(),
        "rounds=1000000".to_string(),
        "seed=3".to_string(),
        "k=4".to_string(),
        format!("checkpoint={}", ck("batch-default")),
    ]
    .to_vec();
    let batch_thread = std::thread::spawn(move || {
        let opts = ServeOptions::parse(&batch_args).expect("batch bench args");
        serve_on(batch_listener, &opts).expect("batch bench daemon");
    });
    // probe until the daemon accepts (it builds its substrate first)
    let (status, body) =
        http_call(&batch_addr, "GET", "/placement", "", proxy_timeout).expect("batch bench up");
    assert_eq!(status, 200, "batch bench daemon: {body}");
    let singles = time_median(reps, || {
        for _ in 0..BATCHED_TOTAL {
            let (status, body) =
                http_call(&batch_addr, "POST", "/step", "", proxy_timeout).expect("single step");
            assert_eq!(status, 200, "single step: {body}");
        }
    });
    let batch_body = format!("{{\"n\": {BATCH_SIZE}}}");
    let batched = time_median(reps, || {
        for _ in 0..BATCHED_TOTAL / BATCH_SIZE {
            let (status, body) =
                http_call(&batch_addr, "POST", "/step", &batch_body, proxy_timeout)
                    .expect("batched step");
            assert_eq!(status, 200, "batched step: {body}");
        }
    });
    println!(
        "batched stepping: {:.0} steps/s single-round requests, {:.0} steps/s in \
         {BATCH_SIZE}-round batches",
        BATCHED_TOTAL as f64 / singles,
        BATCHED_TOTAL as f64 / batched
    );
    let extra = format!(
        ",\n  \"rounds\": {BATCHED_TOTAL},\n  \"batch_rounds\": {BATCH_SIZE},\n  \
         \"steps_per_sec_single\": {:.1},\n  \"steps_per_sec_batched\": {:.1}",
        BATCHED_TOTAL as f64 / singles,
        BATCHED_TOTAL as f64 / batched
    );
    let batched_entry = entry_json(
        "batched_step",
        singles,
        batched,
        "1024 source-driven rounds on a unit-line:8 ONTH cell over real TCP: \
         one POST /step per round vs {\\\"n\\\": 256} batches (one request + one \
         actor-channel hop per batch)",
        &extra,
    );
    announce("BENCH_serve.json", "batched_step", singles, batched);
    let (status, _) = http_call(&batch_addr, "POST", "/shutdown", "", proxy_timeout)
        .expect("batch bench shutdown");
    assert_eq!(status, 200);
    batch_thread.join().expect("batch bench thread");

    // --- Serving: connection scaling on the event-driven front end -------
    // The epoll reactor's claim: idle keep-alive connections cost fds,
    // not threads. A subprocess daemon (so the two processes' fd budgets
    // are independent) serves one step round-trip with no load ("serial")
    // and the same round-trip while this process holds thousands of idle
    // connections against it ("parallel" — speedup ~1.0 means held
    // connections are free); the extra fields record the daemon's thread
    // count before and during, flat by construction of the fixed pools.
    let flexserve_bin = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .join("flexserve");
    let mut daemon = std::process::Command::new(&flexserve_bin)
        .args([
            "serve",
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=onth",
            "rounds=1000000",
            "seed=3",
            "k=4",
            "bind=127.0.0.1:0",
            "workers=2",
            "reactor-threads=2",
            "request-timeout=300",
            &format!("checkpoint={}", ck("scaling-default")),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn scaling daemon");
    let scaling_addr = {
        use std::io::BufRead as _;
        let stdout = daemon.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon announcement");
        line.split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in announcement {line:?}"))
            .to_string()
    };
    let daemon_threads = |pid: u32| -> u64 {
        std::fs::read_to_string(format!("/proc/{pid}/status"))
            .ok()
            .and_then(|s| {
                s.lines()
                    .find_map(|l| l.strip_prefix("Threads:"))
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or(0)
    };
    let one_step = || {
        let (status, body) =
            http_call(&scaling_addr, "POST", "/step", "", proxy_timeout).expect("scaling step");
        assert_eq!(status, 200, "scaling step: {body}");
    };
    one_step(); // warm up the daemon's pools and the pooled connection
    let idle_step = time_median(reps, one_step);
    let threads_idle = daemon_threads(daemon.id());
    let limit = flexserve_experiments::serve::raise_nofile_limit();
    let connections = 10_000.min(limit.saturating_sub(512)) as usize;
    let mut held = Vec::with_capacity(connections);
    for i in 0..connections {
        let conn = std::net::TcpStream::connect(&scaling_addr)
            .unwrap_or_else(|e| panic!("held connection {i} of {connections}: {e}"));
        held.push(conn);
    }
    let loaded_step = time_median(reps, one_step);
    let threads_loaded = daemon_threads(daemon.id());
    println!(
        "connection scaling: {connections} idle connections held, daemon threads \
         {threads_idle} -> {threads_loaded}, step {:.2} ms idle vs {:.2} ms loaded",
        idle_step * 1e3,
        loaded_step * 1e3
    );
    let extra = format!(
        ",\n  \"connections\": {connections},\n  \"daemon_threads_idle\": {threads_idle},\n  \
         \"daemon_threads_loaded\": {threads_loaded},\n  \"step_ms_under_load\": {:.3}",
        loaded_step * 1e3
    );
    let scaling_entry = entry_json(
        "connection_scaling",
        idle_step,
        loaded_step,
        "one /step round-trip against a subprocess daemon (unit-line:8 ONTH, \
         epoll front end, 2 reactor threads): unloaded vs while holding 10k \
         idle keep-alive connections (speedup ~1.0 = held connections are free)",
        &extra,
    );
    announce(
        "BENCH_serve.json",
        "connection_scaling",
        idle_step,
        loaded_step,
    );
    drop(held);
    let (status, _) =
        http_call(&scaling_addr, "POST", "/shutdown", "", proxy_timeout).expect("scaling shutdown");
    assert_eq!(status, 200);
    let exit = daemon.wait().expect("scaling daemon exit");
    assert!(exit.success(), "scaling daemon exited with {exit}");

    write_file(
        "BENCH_serve.json",
        &format!(
            "[\n{step_entry},\n{sessions_entry},\n{route_entry},\n{batched_entry},\n{scaling_entry}\n]\n"
        ),
    );
}
