//! # flexserve-bench
//!
//! Criterion performance benches for the flexserve workspace, plus shared
//! fixtures. The benches cover:
//!
//! * `graph_ops` — substrate generation, Dijkstra, all-pairs matrices;
//! * `routing` — nearest vs load-aware request routing;
//! * `strategies` — per-round decision cost of ONTH / ONBR / ONCONF and
//!   full short runs;
//! * `opt_dp` — the offline DP's scaling with substrate size and horizon;
//! * `figures` — micro (quick-profile) versions of each paper
//!   figure/table pipeline, so a regression in any experiment's runtime is
//!   caught like any other perf regression.
//!
//! Cost-level (not time-level) ablations live in the
//! `flexserve-experiments` crate (`cargo run -p flexserve-experiments
//! --release --bin ablations`).

#![deny(missing_docs)]

use flexserve_graph::gen::{erdos_renyi, waxman, GenConfig};
use flexserve_graph::{DistanceMatrix, Graph};
use flexserve_sim::{CostBreakdown, CostParams, LoadModel};
use flexserve_workload::{record, CommuterScenario, LoadVariant};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A seeded ER substrate with its distance matrix (shared bench fixture).
pub struct BenchEnv {
    /// The substrate.
    pub graph: Graph,
    /// Its APSP matrix.
    pub matrix: DistanceMatrix,
}

/// Builds the standard bench fixture: ER(n, 1%), connected, seeded.
pub fn bench_env(n: usize, seed: u64) -> BenchEnv {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = erdos_renyi(n, 0.01, &GenConfig::default(), &mut rng).expect("valid params");
    let matrix = DistanceMatrix::build(&graph);
    BenchEnv { graph, matrix }
}

/// Seeded connected Waxman substrate (no matrix — the APSP benches build
/// it themselves; that *is* the measurement).
pub fn waxman_env(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    waxman(n, 0.4, 0.15, 10.0, &GenConfig::default(), &mut rng).expect("valid params")
}

/// Seeds per sweep cell in the before/after perf harness (the acceptance
/// criterion's "20-seed sweep cell").
pub const SWEEP_SEEDS: u64 = 20;

/// One per-seed cell of a figure sweep: a commuter trace over the shared
/// environment, played by ONTH. Exactly the shape every figure binary
/// hands to `flexserve_experiments::average`.
pub fn sweep_cell(env: &flexserve_experiments::setup::ExperimentEnv, seed: u64) -> CostBreakdown {
    let ctx = env.context(CostParams::default(), LoadModel::Linear);
    let mut scenario =
        CommuterScenario::with_matrix(&env.graph, &env.matrix, 8, 5, LoadVariant::Dynamic, seed);
    let trace = record(&mut scenario, 240);
    flexserve_experiments::run_algorithm(&ctx, &trace, flexserve_experiments::Algorithm::OnTh)
        .total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let env = bench_env(50, 1);
        assert_eq!(env.graph.node_count(), 50);
        assert!(env.matrix.is_connected());
    }
}
