//! # flexserve-bench
//!
//! Criterion performance benches for the flexserve workspace, plus shared
//! fixtures. The benches cover:
//!
//! * `graph_ops` — substrate generation, Dijkstra, all-pairs matrices;
//! * `routing` — nearest vs load-aware request routing;
//! * `strategies` — per-round decision cost of ONTH / ONBR / ONCONF and
//!   full short runs;
//! * `opt_dp` — the offline DP's scaling with substrate size and horizon;
//! * `figures` — micro (quick-profile) versions of each paper
//!   figure/table pipeline, so a regression in any experiment's runtime is
//!   caught like any other perf regression.
//!
//! Cost-level (not time-level) ablations live in the
//! `flexserve-experiments` crate (`cargo run -p flexserve-experiments
//! --release --bin ablations`).

#![deny(missing_docs)]

use flexserve_graph::gen::{erdos_renyi, GenConfig};
use flexserve_graph::{DistanceMatrix, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A seeded ER substrate with its distance matrix (shared bench fixture).
pub struct BenchEnv {
    /// The substrate.
    pub graph: Graph,
    /// Its APSP matrix.
    pub matrix: DistanceMatrix,
}

/// Builds the standard bench fixture: ER(n, 1%), connected, seeded.
pub fn bench_env(n: usize, seed: u64) -> BenchEnv {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = erdos_renyi(n, 0.01, &GenConfig::default(), &mut rng).expect("valid params");
    let matrix = DistanceMatrix::build(&graph);
    BenchEnv { graph, matrix }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let env = bench_env(50, 1);
        assert_eq!(env.graph.node_count(), 50);
        assert!(env.matrix.is_connected());
    }
}
