//! The [`Scenario`] abstraction and recorded [`Trace`]s.
//!
//! Online algorithms observe requests round by round; offline algorithms
//! (OPT, OFFBR, OFFTH, OFFSTAT) see the whole sequence at once. To make the
//! comparison exact, every experiment first *records* a scenario into a
//! [`Trace`] and then feeds the same trace to every algorithm.

use crate::request::RoundRequests;

/// A demand generator: produces the request multi-set `σt` for each round.
///
/// Implementations are deterministic given their construction-time seed, so
/// identical scenario objects replay identical demand.
pub trait Scenario {
    /// Requests arriving in round `t`. Rounds are queried in increasing
    /// order starting at 0; implementations may keep internal state.
    fn requests(&mut self, t: u64) -> RoundRequests;

    /// A short human-readable description used in experiment logs.
    fn describe(&self) -> String {
        "scenario".to_string()
    }
}

/// A fully materialized request sequence `σ0 … σ(T-1)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    rounds: Vec<RoundRequests>,
}

impl Trace {
    /// Wraps an explicit sequence of rounds.
    pub fn new(rounds: Vec<RoundRequests>) -> Self {
        Trace { rounds }
    }

    /// Number of rounds.
    #[inline]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the trace has no rounds.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The requests of round `t`.
    #[inline]
    pub fn round(&self, t: usize) -> &RoundRequests {
        &self.rounds[t]
    }

    /// Iterates over rounds in time order.
    pub fn iter(&self) -> impl Iterator<Item = &RoundRequests> {
        self.rounds.iter()
    }

    /// Total number of requests over the whole trace.
    pub fn total_requests(&self) -> usize {
        self.rounds.iter().map(|r| r.len()).sum()
    }

    /// The sub-trace covering rounds `[from, to)` (clamped to the trace).
    pub fn slice(&self, from: usize, to: usize) -> Trace {
        let to = to.min(self.rounds.len());
        let from = from.min(to);
        Trace {
            rounds: self.rounds[from..to].to_vec(),
        }
    }
}

/// Records `rounds` rounds of a scenario into a [`Trace`].
pub fn record<S: Scenario + ?Sized>(scenario: &mut S, rounds: u64) -> Trace {
    let mut out = Vec::with_capacity(rounds as usize);
    for t in 0..rounds {
        out.push(scenario.requests(t));
    }
    Trace::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::NodeId;

    struct CountUp;
    impl Scenario for CountUp {
        fn requests(&mut self, t: u64) -> RoundRequests {
            RoundRequests::new(vec![NodeId::new(t as usize); (t + 1) as usize])
        }
    }

    #[test]
    fn record_materializes_in_order() {
        let trace = record(&mut CountUp, 4);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.round(0).len(), 1);
        assert_eq!(trace.round(3).len(), 4);
        assert_eq!(trace.total_requests(), 10);
    }

    #[test]
    fn slice_clamps() {
        let trace = record(&mut CountUp, 5);
        let s = trace.slice(2, 99);
        assert_eq!(s.len(), 3);
        assert_eq!(s.round(0).len(), 3);
        let e = trace.slice(4, 2);
        assert!(e.is_empty());
    }

    #[test]
    fn default_describe() {
        assert_eq!(CountUp.describe(), "scenario");
    }
}
