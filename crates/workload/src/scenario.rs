//! The [`Scenario`] abstraction and recorded traces.
//!
//! Online algorithms observe requests round by round; offline algorithms
//! (OPT, OFFBR, OFFTH, OFFSTAT) see the whole sequence at once. To make the
//! comparison exact, every experiment first *records* a scenario into a
//! [`RoundTrace`] and then feeds the same
//! trace to every algorithm — the trace is `Arc`-shared, so "every
//! algorithm" (and every strategy cell of a figure) literally reads one
//! materialization.

use crate::request::RoundRequests;
use crate::round_trace::RoundTrace;

/// A demand generator: produces the request multi-set `σt` for each round.
///
/// Implementations are deterministic given their construction-time seed, so
/// identical scenario objects replay identical demand.
pub trait Scenario {
    /// Requests arriving in round `t`. Rounds are queried in increasing
    /// order starting at 0; implementations may keep internal state.
    fn requests(&mut self, t: u64) -> RoundRequests;

    /// A short human-readable description used in experiment logs.
    fn describe(&self) -> String {
        "scenario".to_string()
    }
}

/// The historical name of [`RoundTrace`] — kept so the batch pipeline's
/// vocabulary (`record` a scenario into a `Trace`) keeps reading
/// naturally. Same type, same O(1) sharing semantics.
pub type Trace = RoundTrace;

/// Records `rounds` rounds of a scenario into a [`RoundTrace`].
pub fn record<S: Scenario + ?Sized>(scenario: &mut S, rounds: u64) -> RoundTrace {
    RoundTrace::record(scenario, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::NodeId;

    struct CountUp;
    impl Scenario for CountUp {
        fn requests(&mut self, t: u64) -> RoundRequests {
            RoundRequests::new(vec![NodeId::new(t as usize); (t + 1) as usize])
        }
    }

    #[test]
    fn record_materializes_in_order() {
        let trace = record(&mut CountUp, 4);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.round(0).len(), 1);
        assert_eq!(trace.round(3).len(), 4);
        assert_eq!(trace.total_requests(), 10);
    }

    #[test]
    fn slice_clamps() {
        let trace = record(&mut CountUp, 5);
        let s = trace.slice(2, 99);
        assert_eq!(s.len(), 3);
        assert_eq!(s.round(0).len(), 3);
        let e = trace.slice(4, 2);
        assert!(e.is_empty());
    }

    #[test]
    fn default_describe() {
        assert_eq!(CountUp.describe(), "scenario");
    }
}
