//! # flexserve-workload
//!
//! Request/demand generators for the flexible server allocation
//! experiments.
//!
//! The paper's request model (§II-D) and simulation set-up (§V-A) define
//! two families of synthetic demand — built here, plus the on/off mobility
//! model sketched in the model section:
//!
//! * [`time_zones::TimeZonesScenario`] — "p% of all requests originate from
//!   a node chosen uniformly at random … these locations are the same each
//!   day", the remaining requests are uniform background traffic;
//! * [`commuter::CommuterScenario`] — morning fan-out from the network
//!   center, evening fan-in, with *static* (fixed total `2^{T/2}` requests)
//!   or *dynamic* (one request per active access point) load;
//! * [`onoff::OnOffScenario`] — users appear at an access point, dwell for
//!   `Δt`, and jump to another uniformly random access point;
//! * [`proximity::ProximityScenario`] — stationary demand concentrated on
//!   the nodes nearest the network center (spatially skewed, temporally
//!   stable);
//! * [`uniform::UniformScenario`] — pure background noise (baseline/tests).
//!
//! All scenarios implement [`Scenario`] and are deterministic under a seed.
//! The simulation layers consume a recorded [`RoundTrace`] (alias
//! [`Trace`]) — an `Arc`-shared, sliceable sequence of per-round sorted
//! origin counts — so online and offline algorithms are always compared on
//! *identical* request sequences, and every strategy of a figure cell
//! reads one shared materialization instead of regenerating the demand.
//! The serving layer consumes the same generators as streaming
//! [`RequestSource`]s ([`stream`]): a scenario driven round by round, a
//! JSONL replay file, or stdin. The [`json`] module is the workspace's
//! one hand-rolled JSON value/parser, shared by the replay schema, the
//! simulation checkpoints and the `flexserve serve` HTTP endpoints.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commuter;
pub mod json;
pub mod onoff;
pub mod packed;
pub mod proximity;
pub mod request;
pub mod round_trace;
pub mod scenario;
pub mod stream;
pub mod time_zones;
pub mod uniform;

pub use commuter::{CommuterScenario, LoadVariant};
pub use json::JsonValue;
pub use onoff::OnOffScenario;
pub use packed::{
    is_packed_bytes, is_packed_file, pack_jsonl_file, pack_trace, PackSummary, PackWriter,
    PackedReplay, PackedScenario, PackedTrace, DEFAULT_WINDOW_ROUNDS, PACKED_FORMAT, PACKED_MAGIC,
};
pub use proximity::{ProximityOrder, ProximityScenario};
pub use request::RoundRequests;
pub use round_trace::{RoundTrace, TraceScenario};
pub use scenario::{record, Scenario, Trace};
pub use stream::{
    file_source, parse_round, replay_source, round_to_jsonl, stdin_source, JsonlReplay,
    RequestSource, ScenarioStream,
};
pub use time_zones::TimeZonesScenario;
pub use uniform::UniformScenario;
