//! The packed binary trace plane: `flexserve-trace-v1`.
//!
//! JSONL replay ([`JsonlReplay`](crate::stream::JsonlReplay)) parses the
//! whole file and materializes the full [`RoundTrace`] before anything
//! runs; production traces (10⁶–10⁸ rounds) blow both parse time and
//! resident memory. This module is the compact framed alternative:
//!
//! ```text
//! offset    size  field
//! 0         8     magic "FXTRACE1"
//! 8         8     round count            (u64 LE)
//! 16        8     origin universe        (u64 LE, max origin id + 1)
//! 24        8     fingerprint            (u64 LE, FNV-1a over the frame region)
//! 32        …     frames: per round, u32 LE payload length + payload
//! idx_off   8×T   frame index: absolute file offset of every frame (u64 LE)
//! end-16    8     idx_off                (u64 LE)
//! end-8     8     trailer magic "FXTRIDX1"
//! ```
//!
//! Each frame payload holds one round in the canonical sorted-count form
//! of [`RoundRequests`]: LEB128 varints `t`, `k`, then `k` pairs of
//! (origin delta, count). The first delta is the absolute origin id;
//! later deltas are ≥ 1, so the strict origin order of the canonical
//! representation is checkable byte by byte. The trailing frame index
//! gives O(1) seek to any round, which is what makes **windowed** replay
//! possible: [`PackedTrace::window`] decodes only `[start, start+len)`
//! into a `RoundTrace`, so replaying a million-round trace keeps
//! O(window) rounds resident instead of O(trace).
//!
//! Two readers sit behind one interface ([`PackedTrace`]): an mmap fast
//! path (a thin hand-rolled `mmap`/`munmap` syscall shim — no new
//! crates, in the `vendor/` spirit) and a 1 MiB-buffered streaming
//! fallback for platforms or files where mapping fails. Both validate
//! the whole file at open time — magic, trailer, frame index
//! contiguity, frame lengths, and the header fingerprint over the frame
//! region — so a truncated or bit-flipped pack is a clean `Err`, never
//! a panic or a partial trace. The format and its invariants are
//! documented for external producers in `docs/TRACES.md`.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};

use flexserve_graph::NodeId;

use crate::request::RoundRequests;
use crate::round_trace::RoundTrace;
use crate::scenario::Scenario;
use crate::stream::RequestSource;

/// The format tag, used in docs, manifests and error messages.
pub const PACKED_FORMAT: &str = "flexserve-trace-v1";

/// Leading file magic of a packed trace.
pub const PACKED_MAGIC: [u8; 8] = *b"FXTRACE1";

/// Trailer magic closing the frame index.
pub const PACKED_TRAILER_MAGIC: [u8; 8] = *b"FXTRIDX1";

/// Byte length of the fixed header (magic + rounds + universe + fingerprint).
pub const PACKED_HEADER_LEN: u64 = 32;

/// Byte length of the trailer (index offset + trailer magic).
pub const PACKED_TRAILER_LEN: u64 = 16;

/// Smallest possible packed trace: header + empty frame region + trailer.
pub const PACKED_MIN_LEN: u64 = PACKED_HEADER_LEN + PACKED_TRAILER_LEN;

/// Default window size (rounds resident at once) for windowed replay.
pub const DEFAULT_WINDOW_ROUNDS: u64 = 4096;

/// Buffer size of the streaming (non-mmap) reader.
const STREAM_BUF_BYTES: usize = 1 << 20;

// ---------------------------------------------------------------------------
// FNV-1a (same hand-rolled 64-bit variant as `Graph::fingerprint` and the
// routing ring; duplicated here because `workload` sits below both).
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes` — the fingerprint function of the packed
/// format, exported so tests can re-fingerprint mutated frame regions.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a, for hashing the frame region as it streams past.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// mmap shim (unix): the thin syscall wrapper the exemplar dual scanner
// hand-rolls — std already links libc, so no new crate is needed.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mem_map {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only private mapping of a whole file, unmapped on drop.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned: sharing the raw pointer across
    // threads is safe because nothing ever writes through it.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only. Fails (cleanly) when the
        /// platform refuses the mapping — callers fall back to streaming.
        pub fn map(file: &File, len: usize) -> Result<Self, String> {
            if len == 0 {
                return Err("cannot map an empty file".to_string());
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(format!("mmap failed: {}", std::io::Error::last_os_error()));
            }
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Varints (LEB128)
// ---------------------------------------------------------------------------

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| "truncated frame payload (varint runs past the frame)".to_string())?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err("corrupt frame payload (varint overflows u64)".to_string());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err("corrupt frame payload (varint overflows u64)".to_string());
        }
    }
}

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

/// Encodes round `t` into `out` (cleared first): varint `t`, varint `k`,
/// then `k` × (origin delta, count). Deterministic, so packing is a fixed
/// point: pack(unpack(pack(x))) is byte-identical to pack(x).
fn encode_frame(t: u64, round: &RoundRequests, out: &mut Vec<u8>) {
    out.clear();
    let counts = round.counts_slice();
    write_varint(out, t);
    write_varint(out, counts.len() as u64);
    let mut prev: u64 = 0;
    for (i, &(origin, count)) in counts.iter().enumerate() {
        let id = origin.index() as u64;
        let delta = if i == 0 { id } else { id - prev };
        write_varint(out, delta);
        write_varint(out, count as u64);
        prev = id;
    }
}

/// Decodes one frame payload, validating the embedded `t`, the strict
/// origin order, and that every byte is consumed.
fn decode_frame(payload: &[u8], expect_t: u64, universe: u64) -> Result<RoundRequests, String> {
    let mut pos = 0usize;
    let t = read_varint(payload, &mut pos)?;
    if t != expect_t {
        return Err(format!(
            "out-of-order round (expected t={expect_t}, got t={t})"
        ));
    }
    let k = read_varint(payload, &mut pos)?;
    // Every (delta, count) pair costs at least 2 bytes: a declared k that
    // cannot fit in the remaining payload is corruption, caught before the
    // allocation below can balloon.
    let remaining = payload.len() - pos;
    if k > (remaining as u64) / 2 + 1 {
        return Err(format!(
            "corrupt frame at t={t}: {k} origins declared in a {remaining}-byte payload"
        ));
    }
    let mut counts = Vec::with_capacity(k as usize);
    let mut origin: u64 = 0;
    for i in 0..k {
        let delta = read_varint(payload, &mut pos)?;
        if i == 0 {
            origin = delta;
        } else {
            if delta == 0 {
                return Err(format!("corrupt frame at t={t}: unsorted origins"));
            }
            origin = origin
                .checked_add(delta)
                .ok_or_else(|| format!("corrupt frame at t={t}: origin overflows u64"))?;
        }
        if origin >= universe {
            return Err(format!(
                "corrupt frame at t={t}: origin {origin} out of range (trace universe has {universe} origins)"
            ));
        }
        let id = u32::try_from(origin).map_err(|_| {
            format!("corrupt frame at t={t}: origin {origin} exceeds the node id space")
        })?;
        let count = read_varint(payload, &mut pos)?;
        if count == 0 {
            return Err(format!("corrupt frame at t={t}: zero count"));
        }
        let count = usize::try_from(count)
            .map_err(|_| format!("corrupt frame at t={t}: count overflows usize"))?;
        counts.push((NodeId::new(id as usize), count));
    }
    if pos != payload.len() {
        return Err(format!(
            "corrupt frame at t={t}: {} trailing bytes",
            payload.len() - pos
        ));
    }
    Ok(RoundRequests::from_counts(counts))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Summary returned by [`PackWriter::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackSummary {
    /// Rounds written.
    pub rounds: u64,
    /// Origin universe (max origin id + 1, 0 for an all-empty trace).
    pub universe: u64,
    /// Total bytes of the finished pack.
    pub bytes: u64,
}

/// Streams rounds into the packed format: write a placeholder header,
/// append one frame per [`write_round`](Self::write_round), then
/// [`finish`](Self::finish) appends the frame index + trailer and patches
/// the header in place. The writer never holds more than one frame (plus
/// 8 bytes of index per round), so packing a million-round source is
/// O(frame) resident.
pub struct PackWriter<W: Write + Seek> {
    out: W,
    index: Vec<u64>,
    /// Absolute write position (== next frame offset).
    offset: u64,
    hash: Fnv1a,
    universe: u64,
    scratch: Vec<u8>,
}

impl<W: Write + Seek> PackWriter<W> {
    /// Starts a pack on `out` (positioned at its start).
    pub fn new(mut out: W) -> Result<Self, String> {
        let mut header = [0u8; PACKED_HEADER_LEN as usize];
        header[..8].copy_from_slice(&PACKED_MAGIC);
        out.write_all(&header)
            .map_err(|e| format!("pack write error: {e}"))?;
        Ok(PackWriter {
            out,
            index: Vec::new(),
            offset: PACKED_HEADER_LEN,
            hash: Fnv1a::new(),
            universe: 0,
            scratch: Vec::new(),
        })
    }

    /// Rounds written so far.
    pub fn rounds(&self) -> u64 {
        self.index.len() as u64
    }

    /// Appends the next round (frames carry consecutive `t` starting at 0).
    pub fn write_round(&mut self, round: &RoundRequests) -> Result<(), String> {
        let t = self.index.len() as u64;
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_frame(t, round, &mut scratch);
        let len = u32::try_from(scratch.len())
            .map_err(|_| format!("round t={t} encodes past the 4 GiB frame limit"))?;
        let prefix = len.to_le_bytes();
        self.hash.update(&prefix);
        self.hash.update(&scratch);
        self.out
            .write_all(&prefix)
            .and_then(|()| self.out.write_all(&scratch))
            .map_err(|e| format!("pack write error: {e}"))?;
        self.index.push(self.offset);
        self.offset += 4 + u64::from(len);
        if let Some(&(origin, _)) = round.counts_slice().last() {
            self.universe = self.universe.max(origin.index() as u64 + 1);
        }
        self.scratch = scratch;
        Ok(())
    }

    /// Writes the frame index + trailer, patches the header (round count,
    /// origin universe, fingerprint), and returns the summary plus the
    /// underlying writer (flushed, positioned at end of file).
    pub fn finish(mut self) -> Result<(PackSummary, W), String> {
        let err = |e| format!("pack write error: {e}");
        let index_offset = self.offset;
        for &off in &self.index {
            self.out.write_all(&off.to_le_bytes()).map_err(err)?;
        }
        self.out
            .write_all(&index_offset.to_le_bytes())
            .map_err(err)?;
        self.out.write_all(&PACKED_TRAILER_MAGIC).map_err(err)?;
        let bytes = index_offset + self.index.len() as u64 * 8 + PACKED_TRAILER_LEN;
        let summary = PackSummary {
            rounds: self.index.len() as u64,
            universe: self.universe,
            bytes,
        };
        self.out.seek(SeekFrom::Start(8)).map_err(err)?;
        self.out
            .write_all(&summary.rounds.to_le_bytes())
            .map_err(err)?;
        self.out
            .write_all(&summary.universe.to_le_bytes())
            .map_err(err)?;
        self.out
            .write_all(&self.hash.finish().to_le_bytes())
            .map_err(err)?;
        self.out.seek(SeekFrom::Start(bytes)).map_err(err)?;
        self.out.flush().map_err(err)?;
        Ok((summary, self.out))
    }
}

/// Packs a materialized trace into an in-memory `flexserve-trace-v1`
/// image (the [`RoundTrace::to_packed`] delegate).
pub fn pack_trace(trace: &RoundTrace) -> Vec<u8> {
    let mut writer =
        PackWriter::new(std::io::Cursor::new(Vec::new())).expect("in-memory pack cannot fail");
    for round in trace.iter() {
        writer
            .write_round(round)
            .expect("in-memory pack cannot fail");
    }
    let (_, cursor) = writer.finish().expect("in-memory pack cannot fail");
    cursor.into_inner()
}

/// Packs a JSONL replay file into `output`, streaming: one round resident
/// at a time on both sides. Refuses an already-packed input, and removes
/// the partial output file when packing fails midway.
pub fn pack_jsonl_file(input: &str, output: &str) -> Result<PackSummary, String> {
    if is_packed_file(input)? {
        return Err(format!(
            "{input} is already a packed trace ({PACKED_FORMAT}); pass the JSONL original"
        ));
    }
    // JSONL origin ids are only bounded by the node id space here; replay
    // against a concrete substrate re-validates the universe at open time.
    let mut source = crate::stream::file_source(input, u32::MAX as usize)?;
    let result = (|| {
        let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
        let mut writer = PackWriter::new(std::io::BufWriter::new(file))?;
        while let Some(round) = source.next_round()? {
            writer.write_round(&round)?;
        }
        let (summary, _) = writer.finish()?;
        Ok(summary)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(output);
    }
    result
}

/// Whether `buf` starts with the packed-trace magic.
pub fn is_packed_bytes(buf: &[u8]) -> bool {
    buf.len() >= 8 && buf[..8] == PACKED_MAGIC
}

/// Whether the file at `path` starts with the packed-trace magic (the
/// `wl=replay:` / `source=` auto-detection sniff).
pub fn is_packed_file(path: &str) -> Result<bool, String> {
    let mut file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut head = [0u8; 8];
    let mut got = 0;
    while got < head.len() {
        match file
            .read(&mut head[got..])
            .map_err(|e| format!("{path}: read error: {e}"))?
        {
            0 => return Ok(false),
            n => got += n,
        }
    }
    Ok(head == PACKED_MAGIC)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

enum Backing {
    #[cfg(unix)]
    Mapped(mem_map::Mmap),
    Streaming {
        reader: BufReader<File>,
        /// Absolute stream position (to skip redundant seeks on
        /// sequential window reads).
        pos: u64,
        index: Vec<u64>,
        scratch: Vec<u8>,
    },
}

/// A validated `flexserve-trace-v1` file: random access to any round and
/// O(window)-resident [`window`](Self::window) views, backed by either an
/// mmap of the whole file or a buffered streaming reader.
///
/// Opening validates the entire file — magic, trailer, frame-index
/// contiguity, frame lengths, and the FNV-1a fingerprint over the frame
/// region — so every constructor returns a clean `Err` on truncated or
/// corrupted input. Read methods take `&mut self` because the streaming
/// backing seeks.
pub struct PackedTrace {
    rounds: u64,
    universe: u64,
    fingerprint: u64,
    index_offset: u64,
    label: String,
    backing: Backing,
}

/// Shared open-time checks on the fixed-size pieces. Returns
/// `(rounds, universe, fingerprint, index_offset)`.
fn check_fixed(
    label: &str,
    file_len: u64,
    header: &[u8; PACKED_HEADER_LEN as usize],
    trailer: &[u8; PACKED_TRAILER_LEN as usize],
) -> Result<(u64, u64, u64, u64), String> {
    if header[..8] != PACKED_MAGIC {
        return Err(format!("{label}: bad magic (not a {PACKED_FORMAT} file)"));
    }
    let rounds = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let universe = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let fingerprint = u64::from_le_bytes(header[24..32].try_into().unwrap());
    if trailer[8..16] != PACKED_TRAILER_MAGIC {
        return Err(format!("{label}: corrupt trailer (bad index magic)"));
    }
    let index_offset = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    let expected_len = rounds
        .checked_mul(8)
        .and_then(|idx| index_offset.checked_add(idx))
        .and_then(|v| v.checked_add(PACKED_TRAILER_LEN));
    if index_offset < PACKED_HEADER_LEN || expected_len != Some(file_len) {
        return Err(format!(
            "{label}: corrupt frame index (rounds={rounds}, index offset={index_offset}, file length={file_len})"
        ));
    }
    Ok((rounds, universe, fingerprint, index_offset))
}

impl PackedTrace {
    /// Opens `path`, preferring the mmap fast path and falling back to the
    /// buffered streaming reader when mapping is unavailable. Validation
    /// errors (corrupt files) are returned, not retried.
    pub fn open(path: &str) -> Result<Self, String> {
        #[cfg(unix)]
        {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let len = file
                .metadata()
                .map_err(|e| format!("{path}: stat error: {e}"))?
                .len();
            Self::check_len(path, len)?;
            if let Ok(map) = mem_map::Mmap::map(&file, len as usize) {
                return Self::from_map(path, map);
            }
        }
        Self::open_streaming(path)
    }

    /// Opens `path` on the mmap fast path only (errors when the platform
    /// refuses the mapping).
    #[cfg(unix)]
    pub fn open_mmap(path: &str) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("{path}: stat error: {e}"))?
            .len();
        Self::check_len(path, len)?;
        let map = mem_map::Mmap::map(&file, len as usize).map_err(|e| format!("{path}: {e}"))?;
        Self::from_map(path, map)
    }

    fn check_len(label: &str, len: u64) -> Result<(), String> {
        if len < PACKED_MIN_LEN {
            return Err(format!(
                "{label}: truncated packed trace ({len} bytes; the header alone needs {PACKED_MIN_LEN})"
            ));
        }
        Ok(())
    }

    #[cfg(unix)]
    fn from_map(label: &str, map: mem_map::Mmap) -> Result<Self, String> {
        let buf = map.as_slice();
        let file_len = buf.len() as u64;
        let header: &[u8; PACKED_HEADER_LEN as usize] =
            buf[..PACKED_HEADER_LEN as usize].try_into().unwrap();
        let trailer: &[u8; PACKED_TRAILER_LEN as usize] = buf
            [buf.len() - PACKED_TRAILER_LEN as usize..]
            .try_into()
            .unwrap();
        let (rounds, universe, fingerprint, index_offset) =
            check_fixed(label, file_len, header, trailer)?;
        // Walk the frame index: every frame must start where the previous
        // one ended and stay inside the frame region.
        let idx = index_offset as usize;
        let mut pos = PACKED_HEADER_LEN;
        for t in 0..rounds {
            let at = idx + (t * 8) as usize;
            let off = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
            if off != pos {
                return Err(format!(
                    "{label}: frame index mismatch at round {t} (index says offset {off}, frames end at {pos})"
                ));
            }
            if pos + 4 > index_offset {
                return Err(format!(
                    "{label}: frame length at round {t} overruns the frame region"
                ));
            }
            let len = u32::from_le_bytes(buf[pos as usize..pos as usize + 4].try_into().unwrap());
            pos += 4 + u64::from(len);
            if pos > index_offset {
                return Err(format!(
                    "{label}: frame length at round {t} overruns the frame region"
                ));
            }
        }
        if pos != index_offset {
            return Err(format!(
                "{label}: frame region does not end at the frame index ({} unindexed bytes)",
                index_offset - pos
            ));
        }
        let actual = fnv1a(&buf[PACKED_HEADER_LEN as usize..idx]);
        if actual != fingerprint {
            return Err(format!(
                "{label}: fingerprint mismatch (header says {fingerprint:#018x}, frames hash to {actual:#018x})"
            ));
        }
        Ok(PackedTrace {
            rounds,
            universe,
            fingerprint,
            index_offset,
            label: label.to_string(),
            backing: Backing::Mapped(map),
        })
    }

    /// Opens `path` on the buffered streaming path only (no mmap), e.g. to
    /// pin both readers against each other in tests.
    pub fn open_streaming(path: &str) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("{path}: stat error: {e}"))?
            .len();
        Self::check_len(path, len)?;
        let ioe = |e| format!("{path}: read error: {e}");
        let mut reader = BufReader::with_capacity(STREAM_BUF_BYTES, file);
        let mut header = [0u8; PACKED_HEADER_LEN as usize];
        reader.read_exact(&mut header).map_err(ioe)?;
        reader
            .seek(SeekFrom::Start(len - PACKED_TRAILER_LEN))
            .map_err(ioe)?;
        let mut trailer = [0u8; PACKED_TRAILER_LEN as usize];
        reader.read_exact(&mut trailer).map_err(ioe)?;
        let (rounds, universe, fingerprint, index_offset) =
            check_fixed(path, len, &header, &trailer)?;
        reader.seek(SeekFrom::Start(index_offset)).map_err(ioe)?;
        let mut index = Vec::with_capacity(rounds as usize);
        let mut entry = [0u8; 8];
        for _ in 0..rounds {
            reader.read_exact(&mut entry).map_err(ioe)?;
            index.push(u64::from_le_bytes(entry));
        }
        // One sequential pass over the frame region: index contiguity,
        // frame lengths and the fingerprint, hashed through a bounded
        // chunk buffer so validation itself is O(buffer) resident.
        reader
            .seek(SeekFrom::Start(PACKED_HEADER_LEN))
            .map_err(ioe)?;
        let mut hash = Fnv1a::new();
        let mut chunk = vec![0u8; 64 * 1024];
        let mut pos = PACKED_HEADER_LEN;
        for (t, &off) in index.iter().enumerate() {
            if off != pos {
                return Err(format!(
                    "{path}: frame index mismatch at round {t} (index says offset {off}, frames end at {pos})"
                ));
            }
            if pos + 4 > index_offset {
                return Err(format!(
                    "{path}: frame length at round {t} overruns the frame region"
                ));
            }
            let mut prefix = [0u8; 4];
            reader.read_exact(&mut prefix).map_err(ioe)?;
            hash.update(&prefix);
            let frame_len = u64::from(u32::from_le_bytes(prefix));
            pos += 4 + frame_len;
            if pos > index_offset {
                return Err(format!(
                    "{path}: frame length at round {t} overruns the frame region"
                ));
            }
            let mut left = frame_len as usize;
            while left > 0 {
                let take = left.min(chunk.len());
                reader.read_exact(&mut chunk[..take]).map_err(ioe)?;
                hash.update(&chunk[..take]);
                left -= take;
            }
        }
        if pos != index_offset {
            return Err(format!(
                "{path}: frame region does not end at the frame index ({} unindexed bytes)",
                index_offset - pos
            ));
        }
        let actual = hash.finish();
        if actual != fingerprint {
            return Err(format!(
                "{path}: fingerprint mismatch (header says {fingerprint:#018x}, frames hash to {actual:#018x})"
            ));
        }
        Ok(PackedTrace {
            rounds,
            universe,
            fingerprint,
            index_offset,
            label: path.to_string(),
            backing: Backing::Streaming {
                pos: index_offset,
                reader,
                index,
                scratch: Vec::new(),
            },
        })
    }

    /// Number of rounds in the trace.
    pub fn len(&self) -> u64 {
        self.rounds
    }

    /// Whether the trace has no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds == 0
    }

    /// The origin universe from the header: max origin id + 1 (0 when every
    /// round is empty). Replay against a substrate requires
    /// `origin_universe() <= node count`.
    pub fn origin_universe(&self) -> u64 {
        self.universe
    }

    /// The header fingerprint (FNV-1a over the frame region), verified at
    /// open time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this reader is on the mmap fast path (false: buffered
    /// streaming fallback).
    pub fn uses_mmap(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(_) => true,
            Backing::Streaming { .. } => false,
        }
    }

    /// The file this trace was opened from.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Decodes round `t` (an O(1) frame-index seek plus one frame decode).
    pub fn round(&mut self, t: u64) -> Result<RoundRequests, String> {
        if t >= self.rounds {
            return Err(format!(
                "{}: round {t} out of range ({} rounds)",
                self.label, self.rounds
            ));
        }
        let universe = self.universe;
        let index_offset = self.index_offset;
        let rounds = self.rounds;
        match &mut self.backing {
            #[cfg(unix)]
            Backing::Mapped(map) => {
                let buf = map.as_slice();
                let at = index_offset as usize + (t * 8) as usize;
                let off = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap()) as usize;
                let end = if t + 1 < rounds {
                    u64::from_le_bytes(buf[at + 8..at + 16].try_into().unwrap()) as usize
                } else {
                    index_offset as usize
                };
                decode_frame(&buf[off + 4..end], t, universe)
                    .map_err(|e| format!("{}: {e}", self.label))
            }
            Backing::Streaming {
                reader,
                pos,
                index,
                scratch,
            } => {
                let off = index[t as usize];
                if *pos != off {
                    reader
                        .seek(SeekFrom::Start(off))
                        .map_err(|e| format!("{}: read error: {e}", self.label))?;
                    *pos = off;
                }
                let mut prefix = [0u8; 4];
                reader
                    .read_exact(&mut prefix)
                    .map_err(|e| format!("{}: read error: {e}", self.label))?;
                let frame_len = u32::from_le_bytes(prefix) as usize;
                scratch.resize(frame_len, 0);
                reader
                    .read_exact(scratch)
                    .map_err(|e| format!("{}: read error: {e}", self.label))?;
                *pos = off + 4 + frame_len as u64;
                decode_frame(scratch, t, universe).map_err(|e| format!("{}: {e}", self.label))
            }
        }
    }

    /// Decodes the window `[start, start+len)` (clamped to the trace) into
    /// a [`RoundTrace`] view — the O(window)-resident unit of windowed
    /// replay. Sequential windows read the file sequentially.
    pub fn window(&mut self, start: u64, len: u64) -> Result<RoundTrace, String> {
        let end = start.saturating_add(len).min(self.rounds);
        let start = start.min(end);
        let mut out = Vec::with_capacity((end - start) as usize);
        for t in start..end {
            out.push(self.round(t)?);
        }
        Ok(RoundTrace::new(out))
    }

    /// Fully materializes the trace (use [`window`](Self::window) when the
    /// trace may be large).
    pub fn materialize(&mut self) -> Result<RoundTrace, String> {
        self.window(0, self.rounds)
    }

    /// Short human-readable description for logs.
    pub fn describe(&self) -> String {
        format!(
            "packed trace {} ({} rounds, {})",
            self.label,
            self.rounds,
            if self.uses_mmap() {
                "mmap"
            } else {
                "streaming"
            }
        )
    }
}

// ---------------------------------------------------------------------------
// RequestSource + Scenario adapters
// ---------------------------------------------------------------------------

/// A packed trace as a streaming [`RequestSource`] — the packed
/// counterpart of [`JsonlReplay`](crate::stream::JsonlReplay), with an
/// O(1) [`skip`](RequestSource::skip) via the frame index (resume does
/// not decode the skipped prefix).
pub struct PackedReplay {
    trace: PackedTrace,
    pos: u64,
}

impl PackedReplay {
    /// Opens `path` (mmap fast path, streaming fallback), validating the
    /// trace's origin universe against a substrate of `max_node` nodes.
    pub fn open(path: &str, max_node: usize) -> Result<Self, String> {
        let trace = PackedTrace::open(path)?;
        Self::from_trace(trace, max_node)
    }

    /// Wraps an already-open [`PackedTrace`], validating its universe.
    pub fn from_trace(trace: PackedTrace, max_node: usize) -> Result<Self, String> {
        if trace.origin_universe() > max_node as u64 {
            return Err(format!(
                "{}: origin universe {} out of range (substrate has {max_node} nodes)",
                trace.label(),
                trace.origin_universe()
            ));
        }
        Ok(PackedReplay { trace, pos: 0 })
    }

    /// The next round index this replay will emit.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl RequestSource for PackedReplay {
    fn next_round(&mut self) -> Result<Option<RoundRequests>, String> {
        if self.pos >= self.trace.len() {
            return Ok(None);
        }
        let round = self.trace.round(self.pos)?;
        self.pos += 1;
        Ok(Some(round))
    }

    fn skip(&mut self, n: u64) -> Result<(), String> {
        let have = self.trace.len() - self.pos;
        if n > have {
            return Err(format!(
                "source exhausted after {have} of {n} skipped rounds"
            ));
        }
        self.pos += n;
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "packed replay {} ({} rounds, {})",
            self.trace.label(),
            self.trace.len(),
            if self.trace.uses_mmap() {
                "mmap"
            } else {
                "streaming"
            }
        )
    }
}

/// A packed trace replayed as a [`Scenario`] through a sliding decoded
/// window — the packed counterpart of
/// [`TraceScenario`](crate::round_trace::TraceScenario), holding
/// O(window) rounds resident instead of the whole trace. Rounds past the
/// end are empty, and (matching the `wl=replay:` contract) a decode
/// failure on a file that validated at open time panics.
pub struct PackedScenario {
    trace: PackedTrace,
    window: RoundTrace,
    window_start: u64,
    window_len: u64,
}

impl PackedScenario {
    /// Opens `path` for windowed replay against a substrate of `max_node`
    /// nodes, keeping `window_rounds` (≥ 1, e.g.
    /// [`DEFAULT_WINDOW_ROUNDS`]) decoded rounds resident.
    pub fn open(path: &str, max_node: usize, window_rounds: u64) -> Result<Self, String> {
        let trace = PackedTrace::open(path)?;
        if trace.origin_universe() > max_node as u64 {
            return Err(format!(
                "{}: origin universe {} out of range (substrate has {max_node} nodes)",
                trace.label(),
                trace.origin_universe()
            ));
        }
        let mut scenario = PackedScenario {
            trace,
            window: RoundTrace::default(),
            window_start: 0,
            window_len: window_rounds.max(1),
        };
        scenario.window = scenario
            .trace
            .window(0, scenario.window_len)
            .map_err(|e| format!("packed replay: {e}"))?;
        Ok(scenario)
    }

    /// Rounds in the underlying trace.
    pub fn len(&self) -> u64 {
        self.trace.len()
    }

    /// Whether the underlying trace has no rounds.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

impl Scenario for PackedScenario {
    fn requests(&mut self, t: u64) -> RoundRequests {
        if t >= self.trace.len() {
            return RoundRequests::empty();
        }
        if t < self.window_start || t >= self.window_start + self.window_len {
            let start = t - t % self.window_len;
            self.window = self
                .trace
                .window(start, self.window_len)
                .unwrap_or_else(|e| panic!("packed replay: {e}"));
            self.window_start = start;
        }
        self.window.round((t - self.window_start) as usize).clone()
    }

    fn describe(&self) -> String {
        format!(
            "replay({}, {} rounds, packed window={})",
            self.trace.label(),
            self.trace.len(),
            self.window_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::record;
    use crate::uniform::UniformScenario;
    use flexserve_graph::gen::unit_line;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn temp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_str()
            .unwrap()
            .to_string()
    }

    fn sample_trace(rounds: u64) -> RoundTrace {
        let g = unit_line(16).unwrap();
        record(&mut UniformScenario::new(&g, 5, 42), rounds)
    }

    #[test]
    fn fnv1a_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // truncated + overflowing varints fail cleanly
        assert!(read_varint(&[0x80], &mut 0)
            .unwrap_err()
            .contains("truncated"));
        assert!(read_varint(&[0xff; 10], &mut 0)
            .unwrap_err()
            .contains("overflows"));
    }

    #[test]
    fn pack_unpack_round_trips_and_is_a_fixed_point() {
        let trace = sample_trace(20);
        let bytes = pack_trace(&trace);
        assert!(is_packed_bytes(&bytes));
        let path = temp("flexserve-packed-unit.ftr");
        std::fs::write(&path, &bytes).unwrap();
        let mut packed = PackedTrace::open(&path).unwrap();
        assert_eq!(packed.len(), 20);
        let back = packed.materialize().unwrap();
        assert_eq!(back, trace);
        assert_eq!(pack_trace(&back), bytes, "pack must be a fixed point");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mmap_and_streaming_agree() {
        let trace = sample_trace(15);
        let path = temp("flexserve-packed-modes.ftr");
        std::fs::write(&path, pack_trace(&trace)).unwrap();
        let mut streaming = PackedTrace::open_streaming(&path).unwrap();
        assert!(!streaming.uses_mmap());
        assert_eq!(streaming.materialize().unwrap(), trace);
        #[cfg(unix)]
        {
            let mut mapped = PackedTrace::open_mmap(&path).unwrap();
            assert!(mapped.uses_mmap());
            assert_eq!(mapped.materialize().unwrap(), trace);
            assert_eq!(mapped.fingerprint(), streaming.fingerprint());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windows_are_clamped_views() {
        let trace = sample_trace(10);
        let path = temp("flexserve-packed-window.ftr");
        std::fs::write(&path, pack_trace(&trace)).unwrap();
        let mut packed = PackedTrace::open(&path).unwrap();
        assert_eq!(packed.window(3, 4).unwrap(), trace.slice(3, 7));
        assert_eq!(packed.window(8, 100).unwrap(), trace.slice(8, 10));
        assert!(packed.window(50, 5).unwrap().is_empty());
        // random access after windows
        assert_eq!(&packed.round(2).unwrap(), trace.round(2));
        assert_eq!(&packed.round(9).unwrap(), trace.round(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_packs() {
        let path = temp("flexserve-packed-empty.ftr");
        std::fs::write(&path, pack_trace(&RoundTrace::default())).unwrap();
        let mut packed = PackedTrace::open(&path).unwrap();
        assert!(packed.is_empty());
        assert_eq!(packed.origin_universe(), 0);
        assert!(packed.materialize().unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn packed_replay_streams_and_skips() {
        let trace = sample_trace(12);
        let path = temp("flexserve-packed-replay.ftr");
        std::fs::write(&path, pack_trace(&trace)).unwrap();
        let mut replay = PackedReplay::open(&path, 16).unwrap();
        assert!(replay.describe().contains("packed replay"));
        replay.skip(5).unwrap();
        assert_eq!(replay.position(), 5);
        for t in 5..12 {
            assert_eq!(&replay.next_round().unwrap().unwrap(), trace.round(t));
        }
        assert!(replay.next_round().unwrap().is_none());
        // skipping past the end reports how far it got
        let mut replay = PackedReplay::open(&path, 16).unwrap();
        assert!(replay
            .skip(13)
            .unwrap_err()
            .contains("exhausted after 12 of 13"));
        // universe validation
        assert!(PackedReplay::open(&path, 2)
            .err()
            .unwrap()
            .contains("out of range"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn packed_scenario_windows_through_the_trace() {
        let trace = sample_trace(11);
        let path = temp("flexserve-packed-scenario.ftr");
        std::fs::write(&path, pack_trace(&trace)).unwrap();
        let mut scenario = PackedScenario::open(&path, 16, 4).unwrap();
        assert_eq!(scenario.len(), 11);
        for t in 0..11u64 {
            assert_eq!(&scenario.requests(t), trace.round(t as usize));
        }
        assert!(scenario.requests(11).is_empty(), "past-the-end is empty");
        // revisiting an earlier round re-windows correctly
        assert_eq!(&scenario.requests(1), trace.round(1));
        assert!(scenario.describe().contains("packed window=4"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decode_frame_rejects_corrupt_payloads() {
        let round = RoundRequests::new(vec![n(1), n(1), n(4)]);
        let mut payload = Vec::new();
        encode_frame(3, &round, &mut payload);
        assert_eq!(decode_frame(&payload, 3, 16).unwrap(), round);
        // wrong t
        assert!(decode_frame(&payload, 4, 16)
            .unwrap_err()
            .contains("out-of-order round"));
        // origin out of universe
        assert!(decode_frame(&payload, 3, 2)
            .unwrap_err()
            .contains("out of range"));
        // trailing bytes
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_frame(&long, 3, 16).unwrap_err().contains("trailing"));
        // truncated payload
        assert!(decode_frame(&payload[..payload.len() - 1], 3, 16)
            .unwrap_err()
            .contains("truncated"));
        // zero delta == unsorted origins: [t=0, k=2, (5,1), (+0,1)]
        let unsorted = [0u8, 2, 5, 1, 0, 1];
        assert!(decode_frame(&unsorted, 0, 16)
            .unwrap_err()
            .contains("unsorted"));
        // zero count
        let zero_count = [0u8, 1, 5, 0];
        assert!(decode_frame(&zero_count, 0, 16)
            .unwrap_err()
            .contains("zero count"));
        // absurd k in a tiny payload fails before allocating
        let huge_k = [0u8, 0xff, 0xff, 0xff, 0xff, 0x0f];
        assert!(decode_frame(&huge_k, 0, 16).is_err());
    }

    #[test]
    fn sniffers_detect_format() {
        assert!(!is_packed_bytes(b"{\"origins\":[]}"));
        assert!(!is_packed_bytes(b"FXTR"));
        let path = temp("flexserve-packed-sniff.jsonl");
        std::fs::write(&path, "{\"t\":0,\"origins\":[1]}\n").unwrap();
        assert!(!is_packed_file(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
        assert!(is_packed_file("/nonexistent/trace.ftr").is_err());
    }

    #[test]
    fn pack_jsonl_file_streams_and_refuses_packed_input() {
        let trace = sample_trace(9);
        let jsonl = temp("flexserve-packed-from.jsonl");
        let out = temp("flexserve-packed-from.ftr");
        std::fs::write(&jsonl, trace.to_jsonl()).unwrap();
        let summary = pack_jsonl_file(&jsonl, &out).unwrap();
        assert_eq!(summary.rounds, 9);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            pack_trace(&trace),
            "file pack == in-memory pack"
        );
        assert!(pack_jsonl_file(&out, &jsonl)
            .unwrap_err()
            .contains("already a packed trace"));
        std::fs::remove_file(&jsonl).unwrap();
        std::fs::remove_file(&out).unwrap();
    }
}
