//! Streaming request sources.
//!
//! The batch pipeline records a [`Scenario`] into a
//! [`Trace`](crate::scenario::Trace) up front; a
//! serving system cannot — rounds arrive one at a time, possibly from
//! outside the process. A [`RequestSource`] is the streaming form of a
//! scenario: a fallible, possibly finite iterator of [`RoundRequests`].
//! Three sources cover the serving layer's needs:
//!
//! * [`ScenarioStream`] — any [`Scenario`] driven round by round (every
//!   generator in this crate gains a streaming form through it),
//! * [`JsonlReplay`] — a JSONL replay file or any [`BufRead`]: one JSON
//!   object per line, `{"origins": [<node id>, ...]}` (ids repeat for
//!   multiplicity; an optional `"t"` field is validated against the
//!   stream position when present),
//! * [`stdin_source`] — the same JSONL schema read line-buffered from
//!   standard input, for piping live demand into `flexserve serve`.
//!
//! The schema is documented for external producers in `docs/SERVING.md`.

use std::io::BufRead;

use flexserve_graph::NodeId;

use crate::json::JsonValue;
use crate::request::RoundRequests;
use crate::scenario::Scenario;

/// A streaming producer of request rounds.
///
/// `next_round` returns `Ok(None)` when the source is exhausted (a replay
/// file ended, a round budget ran out) and `Err` for malformed input —
/// sources over in-process generators never fail.
pub trait RequestSource {
    /// The next round of requests, or `None` when the source is done.
    fn next_round(&mut self) -> Result<Option<RoundRequests>, String>;

    /// Pulls up to `n` rounds in one call — the batched `/step` path
    /// (`{"n": <k>}` bodies), where one actor-channel hop amortizes over
    /// the whole batch. Returns fewer than `n` rounds only when the
    /// source runs dry; the caller decides whether a shortfall is an
    /// error. The default loops over [`next_round`](Self::next_round).
    fn next_rounds(&mut self, n: u64) -> Result<Vec<RoundRequests>, String> {
        let mut rounds = Vec::with_capacity(n.min(4096) as usize);
        for _ in 0..n {
            match self.next_round()? {
                Some(round) => rounds.push(round),
                None => break,
            }
        }
        Ok(rounds)
    }

    /// Discards the next `n` rounds (the resume fast-forward). The default
    /// pulls and drops rounds one by one; sources with an index (packed
    /// traces) override it with an O(1) seek. Running out of rounds before
    /// `n` is an error — a replay shorter than the skip cannot resume.
    fn skip(&mut self, n: u64) -> Result<(), String> {
        for k in 0..n {
            if self.next_round()?.is_none() {
                return Err(format!("source exhausted after {k} of {n} skipped rounds"));
            }
        }
        Ok(())
    }

    /// Short human-readable description for logs and `/metrics`.
    fn describe(&self) -> String {
        "request source".to_string()
    }
}

/// A [`Scenario`] as a [`RequestSource`]: rounds are generated on demand,
/// optionally capped at `limit` rounds (`None` = unbounded).
pub struct ScenarioStream {
    scenario: Box<dyn Scenario>,
    t: u64,
    limit: Option<u64>,
}

impl ScenarioStream {
    /// Streams `scenario` from round 0, stopping after `limit` rounds when
    /// given.
    pub fn new(scenario: Box<dyn Scenario>, limit: Option<u64>) -> Self {
        ScenarioStream {
            scenario,
            t: 0,
            limit,
        }
    }

    /// The next round index this stream will generate.
    pub fn position(&self) -> u64 {
        self.t
    }

    /// Fast-forwards the generator to round `t` *without* emitting the
    /// skipped rounds (used when resuming a checkpointed session: the
    /// scenario must be replayed to its pre-snapshot position so the
    /// post-resume demand matches the uninterrupted run).
    pub fn skip_to(&mut self, t: u64) {
        while self.t < t {
            let _ = self.scenario.requests(self.t);
            self.t += 1;
        }
    }
}

impl RequestSource for ScenarioStream {
    fn next_round(&mut self) -> Result<Option<RoundRequests>, String> {
        if self.limit.is_some_and(|l| self.t >= l) {
            return Ok(None);
        }
        let batch = self.scenario.requests(self.t);
        self.t += 1;
        Ok(Some(batch))
    }

    fn describe(&self) -> String {
        match self.limit {
            Some(l) => format!("{} (first {l} rounds)", self.scenario.describe()),
            None => self.scenario.describe(),
        }
    }
}

/// Renders one round as its JSONL line (without the trailing newline):
/// `{"t":<round>,"origins":[...]}`.
pub fn round_to_jsonl(t: u64, batch: &RoundRequests) -> String {
    JsonValue::Obj(vec![
        ("t".into(), JsonValue::from(t)),
        (
            "origins".into(),
            JsonValue::Arr(batch.iter().map(|o| JsonValue::from(o.index())).collect()),
        ),
    ])
    .render()
}

/// Parses the `{"origins": [...]}` object shared by JSONL replay lines and
/// the `POST /step` request body. `max_node` bounds the valid node ids
/// (the substrate's node count).
pub fn parse_round(value: &JsonValue, max_node: usize) -> Result<RoundRequests, String> {
    let origins = value
        .get("origins")
        .ok_or("round: missing \"origins\" array")?
        .as_array()
        .ok_or("round: \"origins\" must be an array")?;
    // Collect first, canonicalize once: per-origin `push` would binary
    // insert into the sorted counts vec (O(k²) for adversarially ordered
    // bodies on the serve hot path); `new` does one sort + fold.
    let mut ids = Vec::with_capacity(origins.len());
    for o in origins {
        let id = o
            .as_usize()
            .ok_or_else(|| format!("round: bad origin {}", o.render()))?;
        if id >= max_node {
            return Err(format!(
                "round: origin {id} out of range (substrate has {max_node} nodes)"
            ));
        }
        ids.push(NodeId::new(id));
    }
    Ok(RoundRequests::new(ids))
}

/// A JSONL replay: one round per line, in time order.
///
/// Blank lines are skipped. Lines with a `"t"` field are validated
/// against the stream position, so a truncated or shuffled replay fails
/// loudly instead of silently shifting demand in time.
pub struct JsonlReplay<R: BufRead> {
    reader: R,
    /// Rounds already emitted (== the expected `t` of the next line).
    t: u64,
    max_node: usize,
    label: String,
}

impl<R: BufRead> JsonlReplay<R> {
    /// Replays rounds from `reader`, validating origins against a
    /// substrate of `max_node` nodes.
    pub fn new(reader: R, max_node: usize, label: impl Into<String>) -> Self {
        JsonlReplay {
            reader,
            t: 0,
            max_node,
            label: label.into(),
        }
    }
}

impl<R: BufRead> RequestSource for JsonlReplay<R> {
    fn next_round(&mut self) -> Result<Option<RoundRequests>, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("{}: read error: {e}", self.label))?;
            if n == 0 {
                return Ok(None);
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        let value = JsonValue::parse(line.trim())
            .map_err(|e| format!("{} line {}: {e}", self.label, self.t + 1))?;
        if let Some(t) = value.get("t") {
            let t = t
                .as_u64()
                .ok_or_else(|| format!("{} line {}: bad \"t\"", self.label, self.t + 1))?;
            if t != self.t {
                return Err(format!(
                    "{}: out-of-order round (expected t={}, got t={t})",
                    self.label, self.t
                ));
            }
        }
        let batch = parse_round(&value, self.max_node)
            .map_err(|e| format!("{} line {}: {e}", self.label, self.t + 1))?;
        self.t += 1;
        Ok(Some(batch))
    }

    fn describe(&self) -> String {
        format!("jsonl replay {}", self.label)
    }
}

/// Opens a JSONL replay file.
pub fn file_source(
    path: &str,
    max_node: usize,
) -> Result<JsonlReplay<std::io::BufReader<std::fs::File>>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(JsonlReplay::new(
        std::io::BufReader::new(file),
        max_node,
        path,
    ))
}

/// Opens a replay file of either format, sniffing the leading magic:
/// a `flexserve-trace-v1` pack becomes a
/// [`PackedReplay`](crate::packed::PackedReplay) (mmap fast path,
/// streaming fallback), anything else a [`JsonlReplay`]. This is the one
/// entry point behind `wl=replay:<path>` and `source=<path>`, so packed
/// and JSONL traces are interchangeable everywhere.
pub fn replay_source(path: &str, max_node: usize) -> Result<Box<dyn RequestSource>, String> {
    if crate::packed::is_packed_file(path)? {
        Ok(Box::new(crate::packed::PackedReplay::open(path, max_node)?))
    } else {
        Ok(Box::new(file_source(path, max_node)?))
    }
}

/// A JSONL replay over standard input (line-buffered), for piping live
/// demand into a serving process.
pub fn stdin_source(max_node: usize) -> JsonlReplay<std::io::BufReader<std::io::Stdin>> {
    JsonlReplay::new(std::io::BufReader::new(std::io::stdin()), max_node, "stdin")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::record;
    use crate::uniform::UniformScenario;
    use flexserve_graph::gen::unit_line;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn scenario_stream_matches_recorded_trace() {
        let g = unit_line(10).unwrap();
        let trace = record(&mut UniformScenario::new(&g, 4, 7), 12);
        let mut stream = ScenarioStream::new(Box::new(UniformScenario::new(&g, 4, 7)), Some(12));
        let mut streamed = Vec::new();
        while let Some(batch) = stream.next_round().unwrap() {
            streamed.push(batch);
        }
        assert_eq!(streamed.len(), 12);
        for (t, batch) in streamed.iter().enumerate() {
            assert_eq!(batch, trace.round(t), "round {t} must match the trace");
        }
        assert!(stream.next_round().unwrap().is_none(), "limit is sticky");
    }

    #[test]
    fn scenario_stream_skip_to_resumes_mid_stream() {
        let g = unit_line(10).unwrap();
        let trace = record(&mut UniformScenario::new(&g, 4, 7), 12);
        let mut stream = ScenarioStream::new(Box::new(UniformScenario::new(&g, 4, 7)), Some(12));
        stream.skip_to(6);
        assert_eq!(stream.position(), 6);
        let batch = stream.next_round().unwrap().unwrap();
        assert_eq!(&batch, trace.round(6));
    }

    #[test]
    fn next_rounds_batches_and_reports_shortfall() {
        let g = unit_line(10).unwrap();
        let trace = record(&mut UniformScenario::new(&g, 4, 7), 12);
        let mut stream = ScenarioStream::new(Box::new(UniformScenario::new(&g, 4, 7)), Some(12));
        let batch = stream.next_rounds(5).unwrap();
        assert_eq!(batch.len(), 5);
        for (t, round) in batch.iter().enumerate() {
            assert_eq!(round, trace.round(t), "round {t} must match the trace");
        }
        // Asking past the end returns the remainder, not an error.
        let rest = stream.next_rounds(100).unwrap();
        assert_eq!(rest.len(), 7);
        assert!(stream.next_rounds(3).unwrap().is_empty());
    }

    #[test]
    fn jsonl_round_trip() {
        let mut batch = RoundRequests::empty();
        batch.push_many(n(3), 2);
        batch.push(n(0));
        let line = round_to_jsonl(5, &batch);
        // origins render in origin order (the batch's canonical form)
        assert_eq!(line, r#"{"t":5,"origins":[0,3,3]}"#);
        let parsed = parse_round(&JsonValue::parse(&line).unwrap(), 10).unwrap();
        assert_eq!(parsed, batch);
    }

    #[test]
    fn jsonl_replay_reads_lines_in_order() {
        let text = "\
{\"t\":0,\"origins\":[1,1]}\n\
\n\
{\"t\":1,\"origins\":[]}\n\
{\"origins\":[2]}\n";
        let mut replay = JsonlReplay::new(text.as_bytes(), 5, "test");
        assert_eq!(
            replay.next_round().unwrap().unwrap(),
            RoundRequests::new(vec![n(1), n(1)])
        );
        assert!(replay.next_round().unwrap().unwrap().is_empty());
        assert_eq!(
            replay.next_round().unwrap().unwrap(),
            RoundRequests::new(vec![n(2)])
        );
        assert!(replay.next_round().unwrap().is_none());
    }

    #[test]
    fn jsonl_replay_rejects_bad_input() {
        // out-of-range origin
        let mut replay = JsonlReplay::new("{\"origins\":[9]}\n".as_bytes(), 5, "test");
        assert!(replay.next_round().unwrap_err().contains("out of range"));
        // out-of-order t
        let mut replay = JsonlReplay::new("{\"t\":3,\"origins\":[]}\n".as_bytes(), 5, "test");
        assert!(replay.next_round().unwrap_err().contains("out-of-order"));
        // not json
        let mut replay = JsonlReplay::new("not json\n".as_bytes(), 5, "test");
        assert!(replay.next_round().is_err());
        // not an origins object
        let mut replay = JsonlReplay::new("[1,2]\n".as_bytes(), 5, "test");
        assert!(replay
            .next_round()
            .unwrap_err()
            .contains("missing \"origins\""));
    }

    #[test]
    fn file_source_round_trips_a_written_replay() {
        let g = unit_line(8).unwrap();
        let trace = record(&mut UniformScenario::new(&g, 3, 11), 6);
        let path = std::env::temp_dir().join("flexserve-stream-test.jsonl");
        let mut text = String::new();
        for (t, round) in trace.iter().enumerate() {
            text.push_str(&round_to_jsonl(t as u64, round));
            text.push('\n');
        }
        std::fs::write(&path, text).unwrap();
        let mut source = file_source(path.to_str().unwrap(), 8).unwrap();
        for t in 0..6 {
            assert_eq!(&source.next_round().unwrap().unwrap(), trace.round(t));
        }
        assert!(source.next_round().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
        assert!(file_source("/nonexistent/replay.jsonl", 8).is_err());
    }

    #[test]
    fn describes() {
        let g = unit_line(4).unwrap();
        let stream = ScenarioStream::new(Box::new(UniformScenario::new(&g, 1, 0)), Some(3));
        assert!(stream.describe().contains("first 3 rounds"));
        let replay = JsonlReplay::new("".as_bytes(), 4, "demo.jsonl");
        assert!(replay.describe().contains("demo.jsonl"));
    }
}
