//! A minimal hand-rolled JSON value, parser and renderer.
//!
//! The workspace deliberately has no serde (no network, vendored deps
//! only; see `docs/ARCHITECTURE.md` §Provenance), but the serving layer
//! needs to *read* JSON, not only write it: checkpoint files are restored,
//! JSONL replay traces are parsed, and the `flexserve serve` daemon
//! decodes request bodies. This module is the one JSON implementation all
//! of those share.
//!
//! Scope is exactly what those consumers need:
//!
//! * objects preserve insertion order (a `Vec` of pairs, not a map) so
//!   rendering is deterministic,
//! * numbers are `f64`, rendered with Rust's shortest-round-trip `Display`
//!   and parsed with `str::parse::<f64>`, so a finite float survives a
//!   render → parse cycle **bit-identically** — the property the
//!   checkpoint/resume determinism tests pin,
//! * no `\uXXXX` escapes beyond the control range, no comments, no
//!   trailing commas.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers are exact up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; pairs keep insertion order for deterministic rendering.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a key up in an object. Returns `None` for non-objects and
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part (exact up to 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`JsonValue::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a vector of owned strings, if it is an array whose
    /// every element is a string (`["topo=er:100", "strat=onth"]` —
    /// the serve daemon's `POST /sessions` argument lists). `None` when
    /// the value is not an array or any element is not a string.
    pub fn as_str_array(&self) -> Option<Vec<String>> {
        self.as_array()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect()
    }

    /// Renders the value as compact JSON (no whitespace).
    ///
    /// Non-finite numbers have no JSON representation and render as
    /// `null`; every float the simulation checkpoints is a finite cost.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // `Display` for f64 is shortest-round-trip: parsing the
                    // rendered text recovers the exact same bits.
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_str(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document. Trailing non-whitespace is an error, as
    /// is nesting deeper than [`MAX_DEPTH`] (the parser is recursive; the
    /// bound turns a hostile deeply-nested input into an `Err` instead of
    /// a stack overflow).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("json: trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Maximum container nesting depth [`JsonValue::parse`] accepts.
pub const MAX_DEPTH: usize = 128;

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "json: expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("json: bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "json: unexpected {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("json: unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        token
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("json: bad number {token:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Strings are parsed bytewise for escapes, charwise otherwise.
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| "json: invalid utf-8".to_string())?;
            match rest.chars().next() {
                None => return Err("json: unterminated string".into()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("json: bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "json: bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or("json: \\u escape not a scalar")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("json: bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("json: nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("json: expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("json: expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" -2.5 ").unwrap(), JsonValue::Num(-2.5));
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested() {
        let v = JsonValue::parse(r#"{"a": [1, 2], "b": {"c": "x"}, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn render_parse_round_trips_structure() {
        let v = JsonValue::Obj(vec![
            ("t".into(), JsonValue::from(12u64)),
            (
                "xs".into(),
                JsonValue::Arr(vec![JsonValue::from(0.1), JsonValue::from("q\"uote")]),
            ),
            ("flag".into(), JsonValue::Bool(false)),
        ]);
        let text = v.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        // The checkpoint determinism guarantee rests on this property.
        for &x in &[
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -0.0,
            123_456_789.123_456_78,
            2f64.powi(53) - 1.0,
        ] {
            let rendered = JsonValue::Num(x).render();
            let back = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {rendered}");
        }
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn str_array_accessor_wants_all_strings() {
        let v = JsonValue::parse(r#"["topo=er:100","strat=onth"]"#).unwrap();
        assert_eq!(
            v.as_str_array(),
            Some(vec!["topo=er:100".to_string(), "strat=onth".to_string()])
        );
        assert_eq!(JsonValue::parse("[]").unwrap().as_str_array(), Some(vec![]));
        assert_eq!(JsonValue::parse(r#"["a",1]"#).unwrap().as_str_array(), None);
        assert_eq!(JsonValue::parse("\"a\"").unwrap().as_str_array(), None);
    }

    #[test]
    fn integer_accessors_guard_fractions() {
        assert_eq!(JsonValue::Num(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Num(7.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(42.0).as_usize(), Some(42));
        assert_eq!(JsonValue::Bool(true).as_u64(), None);
    }

    #[test]
    fn depth_is_bounded() {
        // depths within the bound parse…
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(JsonValue::parse(&ok).is_ok());
        // …one past it errors instead of blowing the stack
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // a hostile unclosed prefix errors too
        let hostile = "[".repeat(100_000);
        assert!(JsonValue::parse(&hostile).is_err());
        // siblings don't accumulate depth
        let wide = format!("[{}]", vec!["[0]"; 1000].join(","));
        assert!(JsonValue::parse(&wide).is_ok());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("Aé")
        );
        assert_eq!(
            JsonValue::parse("\"héllo\"").unwrap().as_str(),
            Some("héllo")
        );
        let rendered = JsonValue::Str("\u{1}".into()).render();
        assert_eq!(rendered, "\"\\u0001\"");
        assert_eq!(JsonValue::parse(&rendered).unwrap().as_str(), Some("\u{1}"));
    }
}
