//! Center-proximity ordering of access points.
//!
//! The commuter scenario needs "access points chosen uniformly at random
//! around the center of the network". [`ProximityOrder`] ranks all nodes by
//! shortest-path latency from the network center once, so scenarios can
//! sample origins concentrically in O(1) per draw.

use rand::seq::SliceRandom;
use rand::Rng;

use flexserve_graph::metrics::metrics_from_matrix;
use flexserve_graph::{DistanceMatrix, Graph, NodeId};

/// Nodes of a substrate ranked by distance from the network center.
#[derive(Clone, Debug)]
pub struct ProximityOrder {
    center: NodeId,
    /// All nodes sorted by (distance from center, id).
    ranked: Vec<NodeId>,
}

impl ProximityOrder {
    /// Builds the ordering from a substrate graph (computes an APSP matrix
    /// internally).
    pub fn new(g: &Graph) -> Self {
        Self::from_matrix(g, &DistanceMatrix::build(g))
    }

    /// Builds the ordering from a precomputed distance matrix.
    pub fn from_matrix(g: &Graph, m: &DistanceMatrix) -> Self {
        let met = metrics_from_matrix(m);
        let center = met.center;
        let mut ranked: Vec<NodeId> = g.nodes().collect();
        ranked.sort_by(|&a, &b| {
            m.get(center, a)
                .partial_cmp(&m.get(center, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ProximityOrder { center, ranked }
    }

    /// The network center (rank 0).
    #[inline]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// The `k` nodes nearest to the center (including the center itself).
    pub fn nearest(&self, k: usize) -> &[NodeId] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// Samples `count` *distinct* origins "around the center": the center
    /// itself plus `count − 1` nodes drawn uniformly from the `2·count`
    /// nearest nodes (DESIGN.md §5 substitution for the paper's unspecified
    /// sampling). Returns fewer nodes when the graph is smaller than
    /// `count`.
    pub fn sample_around_center<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<NodeId> {
        if count == 0 {
            return Vec::new();
        }
        let count = count.min(self.ranked.len());
        let pool_size = (2 * count).min(self.ranked.len());
        // pool excludes the center (rank 0) which is always included.
        let pool = &self.ranked[1..pool_size.max(1)];
        let mut picked = vec![self.center];
        picked.extend(pool.choose_multiple(rng, count - 1).copied());
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::{unit_line, GenConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn line_center_ranks_first() {
        let g = unit_line(7).unwrap();
        let p = ProximityOrder::new(&g);
        assert_eq!(p.center(), NodeId::new(3));
        assert_eq!(p.ranked[0], NodeId::new(3));
        // neighbors of the center come next (ids 2 and 4)
        let next: Vec<_> = p.nearest(3)[1..].to_vec();
        assert!(next.contains(&NodeId::new(2)));
        assert!(next.contains(&NodeId::new(4)));
    }

    #[test]
    fn sample_includes_center_and_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = GenConfig::default();
        let g = flexserve_graph::gen::erdos_renyi(60, 0.08, &cfg, &mut rng).unwrap();
        let p = ProximityOrder::new(&g);
        for count in [1usize, 2, 5, 16] {
            let s = p.sample_around_center(count, &mut rng);
            assert_eq!(s.len(), count);
            assert_eq!(s[0], p.center());
            let mut sorted = s.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), count, "origins must be distinct");
        }
    }

    #[test]
    fn sample_clamps_to_graph_size() {
        let g = unit_line(4).unwrap();
        let p = ProximityOrder::new(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        let s = p.sample_around_center(10, &mut rng);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn sample_zero_is_empty() {
        let g = unit_line(4).unwrap();
        let p = ProximityOrder::new(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(p.sample_around_center(0, &mut rng).is_empty());
    }

    #[test]
    fn samples_stay_near_center() {
        let g = unit_line(101).unwrap(); // center = 50
        let p = ProximityOrder::new(&g);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = p.sample_around_center(8, &mut rng);
        // pool is the 16 nearest nodes: all within distance 8 of center
        for v in s {
            let d = (v.index() as i64 - 50).abs();
            assert!(d <= 8, "node {v} too far from center");
        }
    }
}
