//! Center-proximity ordering of access points and the proximity demand
//! scenario built on it.
//!
//! The commuter scenario needs "access points chosen uniformly at random
//! around the center of the network". [`ProximityOrder`] ranks all nodes by
//! shortest-path latency from the network center once, so scenarios can
//! sample origins concentrically in O(1) per draw.
//! [`ProximityScenario`] turns the ordering into a standalone workload:
//! stationary demand concentrated on the nodes nearest the center, the
//! natural "everything happens downtown" counterpart to the commuter and
//! time-zones scenarios.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use flexserve_graph::metrics::metrics_from_matrix;
use flexserve_graph::{DistanceMatrix, Graph, NodeId};

use crate::request::RoundRequests;
use crate::scenario::Scenario;

/// Nodes of a substrate ranked by distance from the network center.
#[derive(Clone, Debug)]
pub struct ProximityOrder {
    center: NodeId,
    /// All nodes sorted by (distance from center, id).
    ranked: Vec<NodeId>,
}

impl ProximityOrder {
    /// Builds the ordering from a substrate graph (computes an APSP matrix
    /// internally).
    pub fn new(g: &Graph) -> Self {
        Self::from_matrix(g, &DistanceMatrix::build(g))
    }

    /// Builds the ordering from a precomputed distance matrix.
    pub fn from_matrix(g: &Graph, m: &DistanceMatrix) -> Self {
        let met = metrics_from_matrix(m);
        let center = met.center;
        let mut ranked: Vec<NodeId> = g.nodes().collect();
        ranked.sort_by(|&a, &b| {
            m.get(center, a)
                .partial_cmp(&m.get(center, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ProximityOrder { center, ranked }
    }

    /// The network center (rank 0).
    #[inline]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// The `k` nodes nearest to the center (including the center itself).
    pub fn nearest(&self, k: usize) -> &[NodeId] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// Samples `count` *distinct* origins "around the center": the center
    /// itself plus `count − 1` nodes drawn uniformly from the `2·count`
    /// nearest nodes (docs/DESIGN.md §5 substitution for the paper's unspecified
    /// sampling). Returns fewer nodes when the graph is smaller than
    /// `count`.
    pub fn sample_around_center<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<NodeId> {
        if count == 0 {
            return Vec::new();
        }
        let count = count.min(self.ranked.len());
        let pool_size = (2 * count).min(self.ranked.len());
        // pool excludes the center (rank 0) which is always included.
        let pool = &self.ranked[1..pool_size.max(1)];
        let mut picked = vec![self.center];
        picked.extend(pool.choose_multiple(rng, count - 1).copied());
        picked
    }
}

/// Stationary center-proximity demand: every round issues a fixed number
/// of requests whose origins are drawn uniformly (with replacement) from
/// the `pool_fraction` of nodes nearest the network center.
///
/// Unlike the commuter scenario there is no daily rhythm — the demand
/// distribution is the same every round, so this workload isolates how
/// strategies behave under *spatially skewed but temporally stable* load
/// (good strategies converge to a static placement near the center and
/// stop paying migration cost).
#[derive(Clone, Debug)]
pub struct ProximityScenario {
    pool: Vec<NodeId>,
    requests_per_round: usize,
    rng: SmallRng,
}

impl ProximityScenario {
    /// Builds the scenario (computes an APSP matrix internally).
    ///
    /// * `pool_fraction` — fraction of the node ranking eligible as origins
    ///   (clamped to at least one node; `1.0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or `pool_fraction ∉ (0, 1]`.
    pub fn new(g: &Graph, requests_per_round: usize, pool_fraction: f64, seed: u64) -> Self {
        Self::with_matrix(
            g,
            &DistanceMatrix::build(g),
            requests_per_round,
            pool_fraction,
            seed,
        )
    }

    /// Builds the scenario from a precomputed distance matrix (lets many
    /// runs share one APSP computation, as the experiment harness does).
    pub fn with_matrix(
        g: &Graph,
        m: &DistanceMatrix,
        requests_per_round: usize,
        pool_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(!g.is_empty(), "proximity scenario: graph must be non-empty");
        assert!(
            pool_fraction > 0.0 && pool_fraction <= 1.0,
            "proximity scenario: pool_fraction must be in (0, 1], got {pool_fraction}"
        );
        let order = ProximityOrder::from_matrix(g, m);
        let pool_size =
            ((order.len() as f64 * pool_fraction).ceil() as usize).clamp(1, order.len());
        ProximityScenario {
            pool: order.nearest(pool_size).to_vec(),
            requests_per_round,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of nodes eligible as request origins.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }
}

impl Scenario for ProximityScenario {
    fn requests(&mut self, _t: u64) -> RoundRequests {
        let origins = (0..self.requests_per_round)
            .map(|_| self.pool[self.rng.gen_range(0..self.pool.len())])
            .collect();
        RoundRequests::new(origins)
    }

    fn describe(&self) -> String {
        format!(
            "proximity (pool={} nodes, {} req/round)",
            self.pool.len(),
            self.requests_per_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::{unit_line, GenConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn line_center_ranks_first() {
        let g = unit_line(7).unwrap();
        let p = ProximityOrder::new(&g);
        assert_eq!(p.center(), NodeId::new(3));
        assert_eq!(p.ranked[0], NodeId::new(3));
        // neighbors of the center come next (ids 2 and 4)
        let next: Vec<_> = p.nearest(3)[1..].to_vec();
        assert!(next.contains(&NodeId::new(2)));
        assert!(next.contains(&NodeId::new(4)));
    }

    #[test]
    fn sample_includes_center_and_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = GenConfig::default();
        let g = flexserve_graph::gen::erdos_renyi(60, 0.08, &cfg, &mut rng).unwrap();
        let p = ProximityOrder::new(&g);
        for count in [1usize, 2, 5, 16] {
            let s = p.sample_around_center(count, &mut rng);
            assert_eq!(s.len(), count);
            assert_eq!(s[0], p.center());
            let mut sorted = s.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), count, "origins must be distinct");
        }
    }

    #[test]
    fn sample_clamps_to_graph_size() {
        let g = unit_line(4).unwrap();
        let p = ProximityOrder::new(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        let s = p.sample_around_center(10, &mut rng);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn sample_zero_is_empty() {
        let g = unit_line(4).unwrap();
        let p = ProximityOrder::new(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(p.sample_around_center(0, &mut rng).is_empty());
    }

    #[test]
    fn proximity_scenario_is_deterministic_and_concentrated() {
        use crate::scenario::record;
        let g = unit_line(101).unwrap(); // center = 50
        let mut a = ProximityScenario::new(&g, 6, 0.2, 9);
        let mut b = ProximityScenario::new(&g, 6, 0.2, 9);
        let ta = record(&mut a, 20);
        let tb = record(&mut b, 20);
        assert_eq!(ta, tb, "same seed must replay the same trace");
        assert_eq!(ta.len(), 20);
        // pool = ceil(101 * 0.2) = 21 nearest nodes: all within distance
        // 10 of the center on the line.
        for round in ta.iter() {
            assert_eq!(round.len(), 6);
            for v in round.iter() {
                assert!(
                    (v.index() as i64 - 50).abs() <= 10,
                    "origin {v} outside pool"
                );
            }
        }
    }

    #[test]
    fn proximity_scenario_pool_clamps() {
        let g = unit_line(5).unwrap();
        let s = ProximityScenario::new(&g, 2, 0.01, 0);
        assert_eq!(s.pool_size(), 1, "tiny fraction clamps to one node");
        let s = ProximityScenario::new(&g, 2, 1.0, 0);
        assert_eq!(s.pool_size(), 5);
        assert!(s.describe().contains("proximity"));
    }

    #[test]
    fn samples_stay_near_center() {
        let g = unit_line(101).unwrap(); // center = 50
        let p = ProximityOrder::new(&g);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = p.sample_around_center(8, &mut rng);
        // pool is the 16 nearest nodes: all within distance 8 of center
        for v in s {
            let d = (v.index() as i64 - 50).abs();
            assert!(d <= 8, "node {v} too far from center");
        }
    }
}
