//! The on/off mobility model (§II-D of the paper).
//!
//! "We may consider on/off models where a user appears at some access point
//! `a1 ∈ A` at time `t`, remains there for a certain period `Δt`, before
//! moving to another arbitrary node `a2 ∈ A` at time `t + Δt`."
//!
//! Each simulated user issues one request per round from its current access
//! point and relocates uniformly at random every `dwell` rounds. Users'
//! phases are staggered at start-up so relocations do not synchronize
//! (unless `correlated` is set, which models the paper's "workers commute
//! downtown in the morning" correlation by moving all users at once).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use flexserve_graph::{Graph, NodeId};

use crate::request::RoundRequests;
use crate::scenario::Scenario;

/// The on/off mobility demand generator.
#[derive(Clone, Debug)]
pub struct OnOffScenario {
    access_points: Vec<NodeId>,
    /// (current location, next relocation round) per user.
    users: Vec<(NodeId, u64)>,
    dwell: u64,
    correlated: bool,
    rng: SmallRng,
}

impl OnOffScenario {
    /// Creates `num_users` users dwelling `dwell` rounds per location.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or `dwell == 0`.
    pub fn new(g: &Graph, num_users: usize, dwell: u64, correlated: bool, seed: u64) -> Self {
        assert!(!g.is_empty(), "on/off: graph must be non-empty");
        assert!(dwell > 0, "on/off: dwell must be >= 1");
        let mut rng = SmallRng::seed_from_u64(seed);
        let access_points: Vec<NodeId> = g.nodes().collect();
        let users = (0..num_users)
            .map(|i| {
                let loc = access_points[rng.gen_range(0..access_points.len())];
                // stagger initial phases unless correlated
                let phase = if correlated {
                    dwell
                } else {
                    1 + (i as u64 % dwell) + rng.gen_range(0..dwell)
                };
                (loc, phase)
            })
            .collect();
        OnOffScenario {
            access_points,
            users,
            dwell,
            correlated,
            rng,
        }
    }

    /// Number of simulated users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
}

impl Scenario for OnOffScenario {
    fn requests(&mut self, t: u64) -> RoundRequests {
        let mut out = RoundRequests::empty();
        for user in &mut self.users {
            if t >= user.1 {
                user.0 = self.access_points[self.rng.gen_range(0..self.access_points.len())];
                user.1 = t + self.dwell;
            }
            out.push(user.0);
        }
        out
    }

    fn describe(&self) -> String {
        format!(
            "on-off({} users, dwell={}, correlated={})",
            self.users.len(),
            self.dwell,
            self.correlated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::record;
    use flexserve_graph::gen::unit_line;

    #[test]
    fn one_request_per_user_per_round() {
        let g = unit_line(12).unwrap();
        let mut s = OnOffScenario::new(&g, 9, 4, false, 0);
        let trace = record(&mut s, 25);
        for r in trace.iter() {
            assert_eq!(r.len(), 9);
        }
    }

    #[test]
    fn users_eventually_move() {
        let g = unit_line(50).unwrap();
        let mut s = OnOffScenario::new(&g, 5, 3, false, 2);
        let first = s.requests(0);
        // after several dwell periods, origins differ w.h.p.
        let mut moved = false;
        for t in 1..30 {
            if s.requests(t) != first {
                moved = true;
                break;
            }
        }
        assert!(moved);
    }

    #[test]
    fn correlated_users_move_in_lockstep() {
        let g = unit_line(40).unwrap();
        let mut s = OnOffScenario::new(&g, 6, 5, true, 3);
        // rounds 0..5 keep everyone put
        let r0 = s.requests(0);
        for t in 1..5 {
            assert_eq!(s.requests(t), r0, "round {t}");
        }
        // round 5 relocates everybody simultaneously
        let r5 = s.requests(5);
        for t in 6..10 {
            assert_eq!(s.requests(t), r5, "round {t}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = unit_line(30).unwrap();
        let t1 = record(&mut OnOffScenario::new(&g, 7, 4, false, 11), 40);
        let t2 = record(&mut OnOffScenario::new(&g, 7, 4, false, 11), 40);
        assert_eq!(t1, t2);
    }

    #[test]
    fn zero_users_is_empty_demand() {
        let g = unit_line(5).unwrap();
        let mut s = OnOffScenario::new(&g, 0, 2, false, 0);
        assert!(s.requests(0).is_empty());
        assert_eq!(s.user_count(), 0);
    }
}
