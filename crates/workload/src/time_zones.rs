//! The time-zones scenario (§V-A of the paper).
//!
//! "We divide a day into `T` time periods. For each time `t`, `p%` of all
//! requests originate from a node chosen uniformly at random from the
//! substrate network (we assume that these locations are the same each
//! day). The sojourn time of the requests at a given location is constant
//! and given by a parameter `τ`. In addition, there is a background
//! traffic: the remaining requests originate from nodes chosen uniformly at
//! random from all access points."

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use flexserve_graph::{Graph, NodeId};

use crate::request::RoundRequests;
use crate::scenario::Scenario;

/// The time-zones demand generator.
#[derive(Clone, Debug)]
pub struct TimeZonesScenario {
    /// One hot location per period, drawn once and reused every day.
    hot_nodes: Vec<NodeId>,
    /// All access points (background traffic pool).
    access_points: Vec<NodeId>,
    /// Sojourn time `τ` (rounds per period; the λ of the sweeps).
    tau: u64,
    /// Fraction of requests from the hot node (`p`, in `[0, 1]`).
    hot_fraction: f64,
    /// Total requests per round.
    requests_per_round: usize,
    rng: SmallRng,
}

impl TimeZonesScenario {
    /// Creates a time-zones scenario over substrate `g`, with `periods`
    /// time periods per day, sojourn `tau` rounds, hot fraction
    /// `hot_fraction` (e.g. 0.5 for the paper's `p = 50%`), and
    /// `requests_per_round` total requests each round.
    ///
    /// All nodes of `g` serve as access points (the paper issues requests
    /// from arbitrary substrate nodes in this scenario).
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`, `tau == 0`, the graph is empty, or
    /// `hot_fraction ∉ [0, 1]`.
    pub fn new(
        g: &Graph,
        periods: u32,
        tau: u64,
        hot_fraction: f64,
        requests_per_round: usize,
        seed: u64,
    ) -> Self {
        assert!(periods > 0, "time zones: periods must be >= 1");
        assert!(tau > 0, "time zones: tau must be >= 1");
        assert!(!g.is_empty(), "time zones: graph must be non-empty");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "time zones: hot_fraction must be in [0,1], got {hot_fraction}"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let access_points: Vec<NodeId> = g.nodes().collect();
        let hot_nodes = (0..periods)
            .map(|_| access_points[rng.gen_range(0..access_points.len())])
            .collect();
        TimeZonesScenario {
            hot_nodes,
            access_points,
            tau,
            hot_fraction,
            requests_per_round,
            rng,
        }
    }

    /// The hot node active in round `t`.
    pub fn hot_node_at(&self, t: u64) -> NodeId {
        let period = (t / self.tau) as usize % self.hot_nodes.len();
        self.hot_nodes[period]
    }

    /// Number of rounds in one day (`T · τ`).
    pub fn day_length(&self) -> u64 {
        self.hot_nodes.len() as u64 * self.tau
    }
}

impl Scenario for TimeZonesScenario {
    fn requests(&mut self, t: u64) -> RoundRequests {
        let hot = self.hot_node_at(t);
        let n_hot = (self.hot_fraction * self.requests_per_round as f64).round() as usize;
        let n_hot = n_hot.min(self.requests_per_round);
        let mut out = RoundRequests::empty();
        out.push_many(hot, n_hot);
        for _ in n_hot..self.requests_per_round {
            let ap = self.access_points[self.rng.gen_range(0..self.access_points.len())];
            out.push(ap);
        }
        out
    }

    fn describe(&self) -> String {
        format!(
            "time-zones(T={}, tau={}, p={:.0}%, {} req/round)",
            self.hot_nodes.len(),
            self.tau,
            self.hot_fraction * 100.0,
            self.requests_per_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::record;
    use flexserve_graph::gen::unit_line;

    fn scenario() -> TimeZonesScenario {
        let g = unit_line(20).unwrap();
        TimeZonesScenario::new(&g, 4, 5, 0.5, 10, 99)
    }

    #[test]
    fn request_volume_is_constant() {
        let mut s = scenario();
        let trace = record(&mut s, 50);
        for r in trace.iter() {
            assert_eq!(r.len(), 10);
        }
    }

    #[test]
    fn hot_node_gets_at_least_half() {
        let mut s = scenario();
        for t in 0..40 {
            let hot = s.hot_node_at(t);
            let r = s.requests(t);
            let c = r.counts();
            let hot_count = c.iter().find(|&&(o, _)| o == hot).map_or(0, |&(_, n)| n);
            assert!(hot_count >= 5, "round {t}: hot node got {hot_count}");
        }
    }

    #[test]
    fn hot_locations_repeat_daily() {
        let s = scenario();
        let day = s.day_length();
        assert_eq!(day, 20);
        for t in 0..20 {
            assert_eq!(s.hot_node_at(t), s.hot_node_at(t + day));
        }
    }

    #[test]
    fn hot_node_constant_within_period() {
        let s = scenario();
        for period in 0..4u64 {
            let base = period * 5;
            let h = s.hot_node_at(base);
            for dt in 1..5 {
                assert_eq!(s.hot_node_at(base + dt), h);
            }
        }
    }

    #[test]
    fn p_one_means_all_from_hot() {
        let g = unit_line(10).unwrap();
        let mut s = TimeZonesScenario::new(&g, 3, 2, 1.0, 6, 1);
        let r = s.requests(0);
        assert_eq!(r.distinct_origins(), 1);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn p_zero_is_pure_background() {
        let g = unit_line(10).unwrap();
        let mut s = TimeZonesScenario::new(&g, 3, 2, 0.0, 200, 1);
        let r = s.requests(0);
        assert_eq!(r.len(), 200);
        // with 200 uniform draws over 10 nodes, >1 origin w.h.p.
        assert!(r.distinct_origins() > 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = unit_line(15).unwrap();
        let t1 = record(&mut TimeZonesScenario::new(&g, 4, 3, 0.5, 8, 5), 30);
        let t2 = record(&mut TimeZonesScenario::new(&g, 4, 3, 0.5, 8, 5), 30);
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn bad_fraction_rejected() {
        let g = unit_line(5).unwrap();
        TimeZonesScenario::new(&g, 2, 2, 1.5, 5, 0);
    }
}
