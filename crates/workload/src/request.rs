//! Request batches: the multi-set `σt` of access points issuing requests in
//! one round.

use flexserve_graph::NodeId;

/// The requests of one round: a multi-set of access-point origins.
///
/// The paper defines `σt` as a multi-set of tuples `(a ∈ A, S ∈ S)`; with a
/// single replicated service (the paper's evaluation setting) only the
/// access point matters, so a batch is a bag of origins.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundRequests {
    origins: Vec<NodeId>,
}

impl RoundRequests {
    /// Creates a batch from raw origins.
    pub fn new(origins: Vec<NodeId>) -> Self {
        RoundRequests { origins }
    }

    /// An empty batch (a round with no demand).
    pub fn empty() -> Self {
        RoundRequests::default()
    }

    /// Number of requests in this round (`|σt|`, counting multiplicity).
    #[inline]
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// Whether the round has no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Iterates over the origins (with multiplicity).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.origins.iter().copied()
    }

    /// The raw origin slice.
    pub fn origins(&self) -> &[NodeId] {
        &self.origins
    }

    /// Request count per access point (origins with multiplicity folded),
    /// sorted by origin id.
    ///
    /// Returning a sorted `Vec` instead of a `HashMap` keeps downstream
    /// float accumulation order — and therefore every cost in the system —
    /// bit-identical across runs and across the serial/parallel execution
    /// paths, and avoids hashing on the routing hot path.
    pub fn counts(&self) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        self.counts_into(&mut out);
        out
    }

    /// Allocation-reusing variant of [`RoundRequests::counts`]: clears
    /// `out` and fills it with the sorted per-origin counts.
    pub fn counts_into(&self, out: &mut Vec<(NodeId, usize)>) {
        out.clear();
        out.extend(self.origins.iter().map(|&o| (o, 1usize)));
        out.sort_unstable_by_key(|&(o, _)| o);
        out.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
    }

    /// Distinct access points used this round.
    pub fn distinct_origins(&self) -> usize {
        self.counts().len()
    }

    /// Appends a request.
    pub fn push(&mut self, origin: NodeId) {
        self.origins.push(origin);
    }

    /// Appends `count` requests from the same origin.
    pub fn push_many(&mut self, origin: NodeId, count: usize) {
        self.origins.extend(std::iter::repeat_n(origin, count));
    }
}

impl FromIterator<NodeId> for RoundRequests {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        RoundRequests {
            origins: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_fold_multiplicity() {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let r = RoundRequests::new(vec![b, a, a, a]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.distinct_origins(), 2);
        // sorted by origin regardless of arrival order
        assert_eq!(r.counts(), vec![(a, 3), (b, 1)]);
    }

    #[test]
    fn push_many() {
        let mut r = RoundRequests::empty();
        assert!(r.is_empty());
        r.push_many(NodeId::new(5), 7);
        r.push(NodeId::new(2));
        assert_eq!(r.len(), 8);
        assert_eq!(r.counts(), vec![(NodeId::new(2), 1), (NodeId::new(5), 7)]);
    }

    #[test]
    fn counts_into_reuses_buffer() {
        let mut buf = Vec::new();
        let r = RoundRequests::new(vec![NodeId::new(3); 5]);
        r.counts_into(&mut buf);
        assert_eq!(buf, vec![(NodeId::new(3), 5)]);
        let cap = buf.capacity();
        RoundRequests::empty().counts_into(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap, "buffer was reallocated");
    }

    #[test]
    fn from_iterator() {
        let r: RoundRequests = (0..4).map(NodeId::new).collect();
        assert_eq!(r.len(), 4);
        assert_eq!(r.distinct_origins(), 4);
    }
}
