//! Request batches: the multi-set `σt` of access points issuing requests in
//! one round.

use flexserve_graph::NodeId;

/// The requests of one round: a multi-set of access-point origins.
///
/// The paper defines `σt` as a multi-set of tuples `(a ∈ A, S ∈ S)`; with a
/// single replicated service (the paper's evaluation setting) only the
/// access point matters, so a batch is a bag of origins.
///
/// The canonical representation is the **folded, sorted per-origin count
/// vector** — exactly what routing, the strategies' epoch windows and the
/// offline DPs consume. Storing counts (instead of a raw origin list)
/// means every consumer reads the same dense vector the demand plane
/// materialized once, nothing re-sorts per strategy, and the float
/// accumulation order downstream is deterministic by construction.
/// Equality is therefore multi-set equality, and iteration order is
/// origin order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundRequests {
    /// Sorted, deduplicated `(origin, count)` pairs; counts are >= 1.
    counts: Vec<(NodeId, usize)>,
    /// Total requests (sum of counts).
    total: usize,
}

impl RoundRequests {
    /// Creates a batch from raw origins (multiplicity by repetition).
    pub fn new(origins: Vec<NodeId>) -> Self {
        let mut counts: Vec<(NodeId, usize)> = origins.iter().map(|&o| (o, 1usize)).collect();
        fold_counts(&mut counts);
        RoundRequests {
            total: origins.len(),
            counts,
        }
    }

    /// Creates a batch directly from `(origin, count)` pairs (any order;
    /// duplicates are merged, zero counts dropped).
    pub fn from_counts(mut counts: Vec<(NodeId, usize)>) -> Self {
        counts.retain(|&(_, c)| c > 0);
        fold_counts(&mut counts);
        let total = counts.iter().map(|&(_, c)| c).sum();
        RoundRequests { counts, total }
    }

    /// An empty batch (a round with no demand).
    pub fn empty() -> Self {
        RoundRequests::default()
    }

    /// Number of requests in this round (`|σt|`, counting multiplicity).
    #[inline]
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the round has no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates over the origins with multiplicity, in origin order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.counts
            .iter()
            .flat_map(|&(o, c)| std::iter::repeat_n(o, c))
    }

    /// The folded per-origin counts, sorted by origin id — a borrow of
    /// the canonical representation. This is the hot-path accessor:
    /// routing and the DP layers read it without allocating or sorting.
    #[inline]
    pub fn counts_slice(&self) -> &[(NodeId, usize)] {
        &self.counts
    }

    /// Request count per access point (origins with multiplicity folded),
    /// sorted by origin id. Allocates a copy; prefer
    /// [`counts_slice`](Self::counts_slice) on hot paths.
    pub fn counts(&self) -> Vec<(NodeId, usize)> {
        self.counts.clone()
    }

    /// Allocation-reusing variant of [`RoundRequests::counts`]: clears
    /// `out` and fills it with the sorted per-origin counts.
    pub fn counts_into(&self, out: &mut Vec<(NodeId, usize)>) {
        out.clear();
        out.extend_from_slice(&self.counts);
    }

    /// Distinct access points used this round.
    pub fn distinct_origins(&self) -> usize {
        self.counts.len()
    }

    /// Appends a request. Keeps the counts canonical via sorted insert —
    /// O(distinct origins) worst case per call, so bulk construction
    /// should go through [`new`](Self::new) or
    /// [`from_counts`](Self::from_counts) (one sort + fold) instead of a
    /// push loop.
    pub fn push(&mut self, origin: NodeId) {
        self.push_many(origin, 1);
    }

    /// Appends `count` requests from the same origin (same cost note as
    /// [`push`](Self::push)).
    pub fn push_many(&mut self, origin: NodeId, count: usize) {
        if count == 0 {
            return;
        }
        self.total += count;
        match self.counts.binary_search_by_key(&origin, |&(o, _)| o) {
            Ok(i) => self.counts[i].1 += count,
            Err(i) => self.counts.insert(i, (origin, count)),
        }
    }

    /// Approximate heap footprint, used by the trace cache's byte budget.
    pub fn memory_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<(NodeId, usize)>()
    }
}

/// Sorts `counts` by origin and merges duplicate origins in place.
fn fold_counts(counts: &mut Vec<(NodeId, usize)>) {
    counts.sort_unstable_by_key(|&(o, _)| o);
    counts.dedup_by(|a, b| {
        if a.0 == b.0 {
            b.1 += a.1;
            true
        } else {
            false
        }
    });
}

impl FromIterator<NodeId> for RoundRequests {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        RoundRequests::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_fold_multiplicity() {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let r = RoundRequests::new(vec![b, a, a, a]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.distinct_origins(), 2);
        // sorted by origin regardless of arrival order
        assert_eq!(r.counts(), vec![(a, 3), (b, 1)]);
        assert_eq!(r.counts_slice(), &[(a, 3), (b, 1)]);
    }

    #[test]
    fn push_many() {
        let mut r = RoundRequests::empty();
        assert!(r.is_empty());
        r.push_many(NodeId::new(5), 7);
        r.push(NodeId::new(2));
        r.push_many(NodeId::new(5), 0); // no-op
        assert_eq!(r.len(), 8);
        assert_eq!(r.counts(), vec![(NodeId::new(2), 1), (NodeId::new(5), 7)]);
    }

    #[test]
    fn counts_into_reuses_buffer() {
        let mut buf = Vec::new();
        let r = RoundRequests::new(vec![NodeId::new(3); 5]);
        r.counts_into(&mut buf);
        assert_eq!(buf, vec![(NodeId::new(3), 5)]);
        let cap = buf.capacity();
        RoundRequests::empty().counts_into(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap, "buffer was reallocated");
    }

    #[test]
    fn from_counts_canonicalizes() {
        let n = NodeId::new;
        let r = RoundRequests::from_counts(vec![(n(9), 2), (n(1), 3), (n(9), 1), (n(4), 0)]);
        assert_eq!(r.counts_slice(), &[(n(1), 3), (n(9), 3)]);
        assert_eq!(r.len(), 6);
        // equal as a multi-set to the origin-list construction
        assert_eq!(
            r,
            RoundRequests::new(vec![n(9), n(1), n(9), n(1), n(1), n(9)])
        );
    }

    #[test]
    fn iter_expands_in_origin_order() {
        let n = NodeId::new;
        let r = RoundRequests::new(vec![n(7), n(2), n(7)]);
        let expanded: Vec<NodeId> = r.iter().collect();
        assert_eq!(expanded, vec![n(2), n(7), n(7)]);
    }

    #[test]
    fn from_iterator() {
        let r: RoundRequests = (0..4).map(NodeId::new).collect();
        assert_eq!(r.len(), 4);
        assert_eq!(r.distinct_origins(), 4);
    }
}
