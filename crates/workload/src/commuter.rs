//! The commuter scenario (§V-A of the paper).
//!
//! "Commuters travel downtown for work in the morning and return back to
//! the suburbs in the evening." A day is divided into `T` phase steps; each
//! step lasts `λ` rounds. During the first half of the day, demand *fans
//! out* from the network center: at step `s < T/2` the requests originate
//! from `2^s` access points around the center. During the second half the
//! process reverses until all requests again originate from the center
//! alone, and a new day starts.
//!
//! Two load variants:
//! * [`LoadVariant::Static`] — the total number of requests per round is
//!   fixed to `2^{T/2}`, split evenly over the active access points;
//! * [`LoadVariant::Dynamic`] — one request per active access point, so the
//!   total varies between 1 and `2^{T/2}`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use flexserve_graph::{DistanceMatrix, Graph};

use crate::proximity::ProximityOrder;
use crate::request::RoundRequests;
use crate::scenario::Scenario;

/// Which commuter load model to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadVariant {
    /// Fixed total of `2^{T/2}` requests per round.
    Static,
    /// One request per active access point (total varies over the day).
    Dynamic,
}

impl std::fmt::Display for LoadVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadVariant::Static => write!(f, "static"),
            LoadVariant::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// The commuter demand generator.
#[derive(Clone, Debug)]
pub struct CommuterScenario {
    order: ProximityOrder,
    /// Number of phase steps per day (`T`, even, ≥ 2).
    t_periods: u32,
    /// Rounds per phase step (`λ`, ≥ 1).
    lambda: u64,
    variant: LoadVariant,
    rng: SmallRng,
    /// Cache: the phase step the current origins were sampled for.
    cached_step: Option<u64>,
    cached_origins: Vec<flexserve_graph::NodeId>,
}

impl CommuterScenario {
    /// Creates a commuter scenario over substrate `g`.
    ///
    /// # Panics
    ///
    /// Panics if `t_periods` is odd or zero, or `lambda == 0`.
    pub fn new(g: &Graph, t_periods: u32, lambda: u64, variant: LoadVariant, seed: u64) -> Self {
        Self::with_matrix(
            g,
            &DistanceMatrix::build(g),
            t_periods,
            lambda,
            variant,
            seed,
        )
    }

    /// Like [`CommuterScenario::new`] but reuses a precomputed distance
    /// matrix (the experiment harness builds one per substrate anyway).
    pub fn with_matrix(
        g: &Graph,
        m: &DistanceMatrix,
        t_periods: u32,
        lambda: u64,
        variant: LoadVariant,
        seed: u64,
    ) -> Self {
        assert!(
            t_periods >= 2 && t_periods.is_multiple_of(2),
            "commuter: T must be even and >= 2, got {t_periods}"
        );
        assert!(lambda >= 1, "commuter: lambda must be >= 1");
        CommuterScenario {
            order: ProximityOrder::from_matrix(g, m),
            t_periods,
            lambda,
            variant,
            rng: SmallRng::seed_from_u64(seed),
            cached_step: None,
            cached_origins: Vec::new(),
        }
    }

    /// The paper's scaling of `T` with network size for the
    /// cost-vs-network-size sweeps: matches the paper's explicit pairs
    /// (n=1000 → T=14, n=500 → T=12, n=200 → T=10):
    /// `T(n) = 2·(⌊log₂ n⌋ − 2)`, clamped to at least 2.
    pub fn t_for_network_size(n: usize) -> u32 {
        let log = (usize::BITS - 1 - n.max(1).leading_zeros()) as i64; // floor(log2 n)
        (2 * (log - 2)).max(2) as u32
    }

    /// Fan-out exponent at phase step `s`: `s` in the first half of the
    /// day, `T − s` in the second half.
    fn exponent(&self, step: u64) -> u32 {
        let s = (step % self.t_periods as u64) as u32;
        if s <= self.t_periods / 2 {
            s
        } else {
            self.t_periods - s
        }
    }

    /// Total requests per round in the static variant: `2^{T/2}`.
    pub fn static_total(&self) -> usize {
        1usize << (self.t_periods / 2)
    }

    /// Number of rounds in one day (`T · λ`).
    pub fn day_length(&self) -> u64 {
        self.t_periods as u64 * self.lambda
    }
}

impl Scenario for CommuterScenario {
    fn requests(&mut self, t: u64) -> RoundRequests {
        let step = t / self.lambda;
        if self.cached_step != Some(step) {
            let e = self.exponent(step);
            let want = 1usize << e;
            self.cached_origins = self.order.sample_around_center(want, &mut self.rng);
            self.cached_step = Some(step);
        }
        let origins = &self.cached_origins;
        let mut out = RoundRequests::empty();
        match self.variant {
            LoadVariant::Dynamic => {
                for &o in origins {
                    out.push(o);
                }
            }
            LoadVariant::Static => {
                let total = self.static_total();
                let p = origins.len().max(1);
                let base = total / p;
                let extra = total % p;
                for (i, &o) in origins.iter().enumerate() {
                    out.push_many(o, base + usize::from(i < extra));
                }
            }
        }
        out
    }

    fn describe(&self) -> String {
        format!(
            "commuter({} load, T={}, lambda={})",
            self.variant, self.t_periods, self.lambda
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::record;
    use flexserve_graph::gen::unit_line;

    fn line_scenario(variant: LoadVariant) -> CommuterScenario {
        let g = unit_line(64).unwrap();
        CommuterScenario::new(&g, 8, 2, variant, 7)
    }

    #[test]
    fn static_total_is_constant_every_round() {
        let mut s = line_scenario(LoadVariant::Static);
        let total = s.static_total();
        assert_eq!(total, 16); // 2^(8/2)
        let trace = record(&mut s, 40);
        for (t, round) in trace.iter().enumerate() {
            assert_eq!(round.len(), total, "round {t}");
        }
    }

    #[test]
    fn dynamic_load_doubles_and_halves() {
        let mut s = line_scenario(LoadVariant::Dynamic);
        // lambda=2, T=8: steps 0..8 have exponents 0,1,2,3,4,3,2,1
        let trace = record(&mut s, 16);
        let sizes: Vec<usize> = trace.iter().map(|r| r.len()).collect();
        assert_eq!(
            sizes,
            vec![1, 1, 2, 2, 4, 4, 8, 8, 16, 16, 8, 8, 4, 4, 2, 2]
        );
    }

    #[test]
    fn day_wraps_around() {
        let mut s = line_scenario(LoadVariant::Dynamic);
        let day = s.day_length();
        assert_eq!(day, 16);
        let trace = record(&mut s, 34);
        // round 16 starts a new day: exponent 0 again
        assert_eq!(trace.round(16).len(), 1);
        assert_eq!(trace.round(17).len(), 1);
        assert_eq!(trace.round(18).len(), 2);
    }

    #[test]
    fn peak_starts_from_center_only() {
        let mut s = line_scenario(LoadVariant::Dynamic);
        let r0 = s.requests(0);
        assert_eq!(r0.len(), 1);
        assert_eq!(r0.iter().next().unwrap(), s.order.center());
    }

    #[test]
    fn origins_stable_within_a_phase_step() {
        let mut s = line_scenario(LoadVariant::Dynamic);
        let a = s.requests(4);
        let b = s.requests(5);
        assert_eq!(a, b, "same step (lambda=2) must reuse origins");
    }

    #[test]
    fn static_split_handles_clamping() {
        // tiny graph: 2^{T/2}=16 requests but only 5 nodes
        let g = unit_line(5).unwrap();
        let mut s = CommuterScenario::new(&g, 8, 1, LoadVariant::Static, 3);
        let trace = record(&mut s, 9);
        for round in trace.iter() {
            assert_eq!(round.len(), 16, "total conserved despite clamping");
        }
        // at peak step (t=4): at most 5 distinct origins
        assert!(trace.round(4).distinct_origins() <= 5);
    }

    #[test]
    fn t_for_network_size_matches_paper_pairs() {
        assert_eq!(CommuterScenario::t_for_network_size(1000), 14);
        assert_eq!(CommuterScenario::t_for_network_size(500), 12);
        assert_eq!(CommuterScenario::t_for_network_size(200), 10);
        assert_eq!(CommuterScenario::t_for_network_size(100), 8);
        // degenerate sizes stay valid (even, >= 2)
        assert_eq!(CommuterScenario::t_for_network_size(1), 2);
    }

    #[test]
    #[should_panic(expected = "T must be even")]
    fn odd_t_rejected() {
        let g = unit_line(8).unwrap();
        CommuterScenario::new(&g, 7, 1, LoadVariant::Static, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = unit_line(32).unwrap();
        let t1 = record(
            &mut CommuterScenario::new(&g, 6, 3, LoadVariant::Dynamic, 42),
            30,
        );
        let t2 = record(
            &mut CommuterScenario::new(&g, 6, 3, LoadVariant::Dynamic, 42),
            30,
        );
        assert_eq!(t1, t2);
    }
}
