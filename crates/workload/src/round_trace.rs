//! The materialized demand plane: [`RoundTrace`].
//!
//! A `RoundTrace` is an **immutable, seed-deterministic sequence of
//! per-round sorted origin counts** — the shared input of the placement
//! plane. Any demand producer lowers into it:
//!
//! * a [`Scenario`] via [`record`](crate::scenario::record) or
//!   [`RoundTrace::record`],
//! * any streaming [`RequestSource`] (JSONL replay files included) via
//!   [`RoundTrace::from_source`],
//! * explicit rounds via [`RoundTrace::new`].
//!
//! Rounds are stored behind an [`Arc`], so **cloning a trace is O(1)**:
//! a figure cell evaluating several strategies against the same demand
//! shares one materialization instead of regenerating (and re-sorting)
//! the workload per strategy, and the offline strategies' by-value trace
//! ownership costs a reference count, not a copy. [`RoundTrace::slice`]
//! returns a clamped **view** over the same storage — the resume path
//! slices instead of copying.
//!
//! Since every round is a [`RoundRequests`] in canonical sorted-count
//! form, sharing a trace can never change results: the placement plane
//! reads the exact count vectors an independent recording would produce
//! (pinned bitwise by `crates/experiments/tests/trace_equivalence.rs`).

use std::sync::Arc;

use crate::request::RoundRequests;
use crate::scenario::Scenario;
use crate::stream::{round_to_jsonl, RequestSource};

/// A fully materialized request sequence `σ0 … σ(T-1)` in per-round
/// sorted-count form, shareable by `Arc` and sliceable for resume.
#[derive(Clone, Debug)]
pub struct RoundTrace {
    rounds: Arc<[RoundRequests]>,
    /// The view window `[start, end)` into `rounds` (whole trace unless
    /// [`slice`](Self::slice)d).
    start: usize,
    end: usize,
}

impl Default for RoundTrace {
    fn default() -> Self {
        RoundTrace::new(Vec::new())
    }
}

impl PartialEq for RoundTrace {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for RoundTrace {}

impl RoundTrace {
    /// Wraps an explicit sequence of rounds.
    pub fn new(rounds: Vec<RoundRequests>) -> Self {
        let rounds: Arc<[RoundRequests]> = rounds.into();
        RoundTrace {
            start: 0,
            end: rounds.len(),
            rounds,
        }
    }

    /// Records `rounds` rounds of a scenario.
    pub fn record<S: Scenario + ?Sized>(scenario: &mut S, rounds: u64) -> Self {
        let mut out = Vec::with_capacity(rounds as usize);
        for t in 0..rounds {
            out.push(scenario.requests(t));
        }
        RoundTrace::new(out)
    }

    /// Lowers a streaming source into a trace: rounds are pulled until the
    /// source is exhausted or `limit` rounds were read. This is how a
    /// JSONL replay file becomes a first-class demand trace.
    pub fn from_source(source: &mut dyn RequestSource, limit: Option<u64>) -> Result<Self, String> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| (out.len() as u64) < l) {
            match source.next_round()? {
                Some(batch) => out.push(batch),
                None => break,
            }
        }
        Ok(RoundTrace::new(out))
    }

    /// The viewed rounds.
    #[inline]
    fn as_slice(&self) -> &[RoundRequests] {
        &self.rounds[self.start..self.end]
    }

    /// Number of rounds in this view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the trace (view) has no rounds.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The requests of round `t` (relative to the view).
    #[inline]
    pub fn round(&self, t: usize) -> &RoundRequests {
        &self.as_slice()[t]
    }

    /// Iterates over rounds in time order.
    pub fn iter(&self) -> impl Iterator<Item = &RoundRequests> {
        self.as_slice().iter()
    }

    /// Total number of requests over the whole trace (view).
    pub fn total_requests(&self) -> usize {
        self.iter().map(|r| r.len()).sum()
    }

    /// The sub-trace covering rounds `[from, to)` (clamped to the view).
    /// O(1): the result shares this trace's storage.
    pub fn slice(&self, from: usize, to: usize) -> RoundTrace {
        let to = to.min(self.len());
        let from = from.min(to);
        RoundTrace {
            rounds: Arc::clone(&self.rounds),
            start: self.start + from,
            end: self.start + to,
        }
    }

    /// Approximate heap footprint of the *backing storage* (not just the
    /// view) — the trace cache's byte-budget unit.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(&*self.rounds)
            + self.rounds.iter().map(|r| r.memory_bytes()).sum::<usize>()
    }

    /// Renders the viewed rounds in the JSONL replay schema (one
    /// `{"t":..,"origins":[..]}` object per line, trailing newline) — the
    /// `flexserve trace record` output, replayable by `source=<path>` and
    /// `wl=replay:<path>`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (t, round) in self.iter().enumerate() {
            out.push_str(&round_to_jsonl(t as u64, round));
            out.push('\n');
        }
        out
    }

    /// Packs the viewed rounds into an in-memory `flexserve-trace-v1`
    /// image (see [`packed`](crate::packed)) — the binary counterpart of
    /// [`to_jsonl`](Self::to_jsonl), readable by
    /// [`PackedTrace`](crate::packed::PackedTrace) and `wl=replay:<path>`.
    pub fn to_packed(&self) -> Vec<u8> {
        crate::packed::pack_trace(self)
    }
}

/// A recorded [`RoundTrace`] replayed as a [`Scenario`] — a trace is a
/// demand generator like any other, so replay files plug into every
/// pipeline (figures, sweeps, serving) that takes a workload.
///
/// Rounds inside the trace are cloned out (cheap: counts only); rounds
/// past the end are empty — a replay that is shorter than the requested
/// horizon simply runs out of demand.
pub struct TraceScenario {
    trace: RoundTrace,
    label: String,
}

impl TraceScenario {
    /// Replays `trace`, described as `label` in logs.
    pub fn new(trace: RoundTrace, label: impl Into<String>) -> Self {
        TraceScenario {
            trace,
            label: label.into(),
        }
    }
}

impl Scenario for TraceScenario {
    fn requests(&mut self, t: u64) -> RoundRequests {
        if (t as usize) < self.trace.len() {
            self.trace.round(t as usize).clone()
        } else {
            RoundRequests::empty()
        }
    }

    fn describe(&self) -> String {
        format!("replay({}, {} rounds)", self.label, self.trace.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::JsonlReplay;
    use flexserve_graph::NodeId;

    struct CountUp;
    impl Scenario for CountUp {
        fn requests(&mut self, t: u64) -> RoundRequests {
            RoundRequests::new(vec![NodeId::new(t as usize); (t + 1) as usize])
        }
    }

    #[test]
    fn record_materializes_in_order() {
        let trace = RoundTrace::record(&mut CountUp, 4);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.round(0).len(), 1);
        assert_eq!(trace.round(3).len(), 4);
        assert_eq!(trace.total_requests(), 10);
    }

    #[test]
    fn clone_shares_storage() {
        let trace = RoundTrace::record(&mut CountUp, 6);
        let copy = trace.clone();
        assert_eq!(trace, copy);
        assert!(
            std::ptr::eq(trace.as_slice().as_ptr(), copy.as_slice().as_ptr()),
            "clone must share the Arc, not copy rounds"
        );
    }

    #[test]
    fn slice_is_a_clamped_view() {
        let trace = RoundTrace::record(&mut CountUp, 5);
        let s = trace.slice(2, 99);
        assert_eq!(s.len(), 3);
        assert_eq!(s.round(0).len(), 3);
        assert!(
            std::ptr::eq(trace.round(2), s.round(0)),
            "slices view the same storage"
        );
        let e = trace.slice(4, 2);
        assert!(e.is_empty());
        // nested slices compose
        let inner = s.slice(1, 3);
        assert_eq!(inner.len(), 2);
        assert_eq!(inner.round(0).len(), 4);
    }

    #[test]
    fn from_source_lowers_a_replay() {
        let text = "{\"t\":0,\"origins\":[1,1,0]}\n{\"t\":1,\"origins\":[2]}\n";
        let mut replay = JsonlReplay::new(text.as_bytes(), 5, "test");
        let trace = RoundTrace::from_source(&mut replay, None).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.round(0).counts_slice(),
            &[(NodeId::new(0), 1), (NodeId::new(1), 2)]
        );
        // the limit caps lowering
        let mut replay = JsonlReplay::new(text.as_bytes(), 5, "test");
        let capped = RoundTrace::from_source(&mut replay, Some(1)).unwrap();
        assert_eq!(capped.len(), 1);
        // errors propagate
        let mut bad = JsonlReplay::new("nope\n".as_bytes(), 5, "test");
        assert!(RoundTrace::from_source(&mut bad, None).is_err());
    }

    #[test]
    fn jsonl_round_trips_through_a_source() {
        let trace = RoundTrace::record(&mut CountUp, 3);
        let text = trace.to_jsonl();
        let mut replay = JsonlReplay::new(text.as_bytes(), 8, "round-trip");
        let back = RoundTrace::from_source(&mut replay, None).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn default_and_eq() {
        assert!(RoundTrace::default().is_empty());
        assert_eq!(RoundTrace::default(), RoundTrace::new(Vec::new()));
        // equality is by viewed contents, not identity
        let a = RoundTrace::record(&mut CountUp, 4);
        let b = RoundTrace::record(&mut CountUp, 4);
        assert_eq!(a, b);
        assert_eq!(a.slice(1, 3), b.slice(1, 3));
        assert_ne!(a, a.slice(0, 3));
    }

    #[test]
    fn trace_scenario_replays_then_runs_dry() {
        let trace = RoundTrace::record(&mut CountUp, 3);
        let mut s = TraceScenario::new(trace.clone(), "demo.jsonl");
        for t in 0..3u64 {
            assert_eq!(&s.requests(t), trace.round(t as usize));
        }
        assert!(s.requests(3).is_empty(), "past-the-end rounds are empty");
        assert!(s.describe().contains("demo.jsonl"));
        assert!(s.describe().contains("3 rounds"));
    }

    #[test]
    fn memory_bytes_counts_backing_storage() {
        let trace = RoundTrace::record(&mut CountUp, 4);
        assert!(trace.memory_bytes() > 0);
        assert_eq!(
            trace.memory_bytes(),
            trace.slice(0, 1).memory_bytes(),
            "views report the shared storage"
        );
    }
}
