//! Uniform background demand: every request originates from an access point
//! chosen uniformly at random. The least structured scenario — useful as a
//! baseline ("dynamic allocation should barely help here") and in tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use flexserve_graph::{Graph, NodeId};

use crate::request::RoundRequests;
use crate::scenario::Scenario;

/// Pure uniform background demand.
#[derive(Clone, Debug)]
pub struct UniformScenario {
    access_points: Vec<NodeId>,
    requests_per_round: usize,
    rng: SmallRng,
}

impl UniformScenario {
    /// Creates the scenario with `requests_per_round` uniform requests.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn new(g: &Graph, requests_per_round: usize, seed: u64) -> Self {
        assert!(!g.is_empty(), "uniform: graph must be non-empty");
        UniformScenario {
            access_points: g.nodes().collect(),
            requests_per_round,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scenario for UniformScenario {
    fn requests(&mut self, _t: u64) -> RoundRequests {
        (0..self.requests_per_round)
            .map(|_| self.access_points[self.rng.gen_range(0..self.access_points.len())])
            .collect()
    }

    fn describe(&self) -> String {
        format!("uniform({} req/round)", self.requests_per_round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::record;
    use flexserve_graph::gen::unit_line;

    #[test]
    fn volume_constant() {
        let g = unit_line(10).unwrap();
        let mut s = UniformScenario::new(&g, 13, 0);
        let trace = record(&mut s, 20);
        for r in trace.iter() {
            assert_eq!(r.len(), 13);
        }
    }

    #[test]
    fn covers_many_nodes_over_time() {
        let g = unit_line(10).unwrap();
        let mut s = UniformScenario::new(&g, 5, 1);
        let trace = record(&mut s, 50);
        let mut seen = std::collections::HashSet::new();
        for r in trace.iter() {
            seen.extend(r.iter());
        }
        assert!(seen.len() >= 9, "only saw {} distinct nodes", seen.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = unit_line(8).unwrap();
        let t1 = record(&mut UniformScenario::new(&g, 4, 9), 15);
        let t2 = record(&mut UniformScenario::new(&g, 4, 9), 15);
        assert_eq!(t1, t2);
    }
}
