//! Vendored subset of the `criterion` API.
//!
//! The build environment has no network access, so this crate implements
//! the benchmarking surface the workspace uses: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], `black_box`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: one warm-up call, then timed batches whose iteration
//! count adapts until either `sample_size` samples are taken or the
//! per-benchmark time budget (default 2 s, `FLEXSERVE_BENCH_BUDGET_MS`)
//! is spent. Mean/min/max per-iteration wall time is printed; when
//! `FLEXSERVE_BENCH_JSON` names a file, one JSON object per benchmark is
//! appended to it (the before/after perf harness consumes this).
//!
//! `cargo test`/`cargo bench -- --test` runs each benchmark exactly once,
//! like upstream criterion's smoke mode.

#![deny(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    stats: &'a mut Option<Stats>,
    mode: Mode,
    sample_size: usize,
    budget: Duration,
}

/// Aggregated timing result of one benchmark.
#[derive(Clone, Copy, Debug)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement.
    Measure,
    /// `--test`: run the routine once and record nothing.
    Smoke,
}

impl<'a> Bencher<'a> {
    /// Times `routine`, adapting the iteration count to the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));

        // Aim each sample at ~budget/sample_size, at least one iteration.
        let per_sample = self.budget.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample =
            ((per_sample / estimate.as_secs_f64()).floor() as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.budget;
        let (mut total, mut iterations) = (0.0f64, 0u64);
        let (mut min_ns, mut max_ns) = (f64::INFINITY, 0.0f64);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total += ns * iters_per_sample as f64;
            iterations += iters_per_sample;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            if Instant::now() > deadline {
                break;
            }
        }
        *self.stats = Some(Stats {
            mean_ns: total / iterations as f64,
            min_ns,
            max_ns,
            iterations,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; output is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filters: Vec<String>,
    budget: Duration,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            filters: Vec::new(),
            budget: Duration::from_millis(
                std::env::var("FLEXSERVE_BENCH_BUDGET_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(2_000),
            ),
            json_path: std::env::var("FLEXSERVE_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Builds a harness from the process CLI arguments (`--test` enables
    /// smoke mode; bare arguments are substring filters).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.mode = Mode::Smoke,
                s if !s.starts_with('-') => c.filters.push(s.to_string()),
                _ => {}
            }
        }
        c
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), 20, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, sample_size: usize, mut f: F) {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| id.contains(p.as_str())) {
            return;
        }
        let mut stats = None;
        let mut b = Bencher {
            stats: &mut stats,
            mode: self.mode,
            sample_size,
            budget: self.budget,
        };
        f(&mut b);
        match (self.mode, stats) {
            (Mode::Smoke, _) => println!("{id}: smoke ok"),
            (Mode::Measure, Some(s)) => {
                println!(
                    "{id}: time [{} .. {} .. {}] ({} iters)",
                    fmt_ns(s.min_ns),
                    fmt_ns(s.mean_ns),
                    fmt_ns(s.max_ns),
                    s.iterations
                );
                if let Some(path) = &self.json_path {
                    let line = format!(
                        "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"iterations\":{}}}\n",
                        id.replace('"', "'"),
                        s.mean_ns,
                        s.min_ns,
                        s.max_ns,
                        s.iterations
                    );
                    let _ = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)
                        .and_then(|mut fh| fh.write_all(line.as_bytes()));
                }
            }
            (Mode::Measure, None) => println!("{id}: no measurement (b.iter never called)"),
        }
    }

    /// Prints the trailing summary (kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(20),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            ..Criterion::default()
        };
        let mut count = 0u32;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn filters_skip_benchmarks() {
        let mut c = Criterion {
            filters: vec!["match-me".into()],
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
        c.bench_function("match-me-too", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(500).to_string(), "500");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
