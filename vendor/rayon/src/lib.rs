//! Vendored subset of the `rayon` API.
//!
//! The build environment has no network access, so this crate provides the
//! slice of rayon this workspace uses, backed by `std::thread::scope`
//! instead of a work-stealing pool: indexed parallel iterators over ranges
//! and slices (`into_par_iter`, `par_iter`, `map`, `enumerate`, `for_each`,
//! `collect`), `par_chunks_mut`, and [`scope`]. Work is split into one
//! contiguous block per worker thread — the right shape for the coarse,
//! uniform tasks here (Dijkstra sources, DP columns, simulation seeds).
//!
//! Thread count comes from `RAYON_NUM_THREADS` when set, else
//! `std::thread::available_parallelism()`. With one thread (or one item)
//! everything runs inline on the caller's stack, so tiny inputs pay no
//! spawn overhead.

#![deny(missing_docs)]

use std::ops::Range;
use std::sync::OnceLock;

/// Number of worker threads used by all parallel operations.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Runs every closure in `tasks`, distributing contiguous blocks over the
/// worker threads. Consumes the items (used by the mutable-chunk paths).
fn drive<W: Send>(tasks: Vec<W>, run: impl Fn(W) + Sync) {
    let n = tasks.len();
    let nt = current_num_threads().min(n);
    if nt <= 1 {
        for t in tasks {
            run(t);
        }
        return;
    }
    let chunk = n.div_ceil(nt);
    let mut blocks: Vec<Vec<W>> = Vec::with_capacity(nt);
    let mut tasks = tasks;
    // Peel blocks off the back so each Vec::split_off is O(block).
    for t in (0..nt).rev() {
        blocks.push(tasks.split_off((t * chunk).min(tasks.len())));
    }
    let run = &run;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(blocks.len());
        for block in blocks {
            handles.push(s.spawn(move || {
                for w in block {
                    run(w);
                }
            }));
        }
        for h in handles {
            h.join().expect("rayon worker panicked");
        }
    });
}

/// An indexed source of parallel items: length plus random access.
///
/// `fetch` must be safe to call concurrently from many threads with
/// distinct indices (enforced by the `Sync` bound).
pub trait IndexedSource: Sync + Sized {
    /// The yielded item type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `i` (`i < len`).
    fn fetch(&self, i: usize) -> Self::Item;
}

/// The parallel-iterator adapters, blanket-implemented for every
/// [`IndexedSource`].
pub trait ParallelIterator: IndexedSource {
    /// Maps each item through `f` (lazily; runs at the terminal operation).
    fn map<T: Send, F: Fn(Self::Item) -> T + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs `f` on every item across the worker threads.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let n = self.len();
        let nt = current_num_threads().min(n.max(1));
        if nt <= 1 {
            for i in 0..n {
                f(self.fetch(i));
            }
            return;
        }
        let chunk = n.div_ceil(nt);
        let this = &self;
        let f = &f;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nt);
            for t in 0..nt {
                handles.push(s.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    for i in lo..hi {
                        f(this.fetch(i));
                    }
                }));
            }
            for h in handles {
                h.join().expect("rayon worker panicked");
            }
        });
    }

    /// Collects all items in index order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        let n = self.len();
        let nt = current_num_threads().min(n.max(1));
        if nt <= 1 {
            return (0..n).map(|i| self.fetch(i)).collect::<Vec<_>>().into();
        }
        let chunk = n.div_ceil(nt);
        let this = &self;
        let mut out: Vec<Self::Item> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..nt)
                .map(|t| {
                    s.spawn(move || {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        (lo..hi).map(|i| this.fetch(i)).collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.append(&mut h.join().expect("rayon worker panicked"));
            }
        });
        out.into()
    }

    /// Sums the items.
    fn sum<T: Send + std::iter::Sum<Self::Item>>(self) -> T
    where
        Self::Item: Send,
    {
        let items: Vec<Self::Item> = self.collect();
        items.into_iter().sum()
    }
}

impl<S: IndexedSource> ParallelIterator for S {}

/// Lazy `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: IndexedSource, T: Send, F: Fn(B::Item) -> T + Sync> IndexedSource for Map<B, F> {
    type Item = T;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn fetch(&self, i: usize) -> T {
        (self.f)(self.base.fetch(i))
    }
}

/// Lazy `enumerate` adapter.
pub struct Enumerate<B> {
    base: B,
}

impl<B: IndexedSource> IndexedSource for Enumerate<B> {
    type Item = (usize, B::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn fetch(&self, i: usize) -> (usize, B::Item) {
        (i, self.base.fetch(i))
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeIter {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    fn fetch(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Parallel iterator over shared slice references.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn fetch(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Conversion into a parallel iterator (rayon's entry point).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter` on slices and `Vec`s.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
///
/// Unlike the read-only sources this one pre-splits the borrow with
/// `chunks_mut` (safe disjointness) and hands whole chunks to workers.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Runs `f` on every chunk across the worker threads.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        drive(self.chunks, f);
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T: Send> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair across the worker threads.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let indexed: Vec<(usize, &'a mut [T])> =
            self.inner.chunks.into_iter().enumerate().collect();
        drive(indexed, |(i, c)| f((i, c)));
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into chunks of `size` (last may be shorter), processed in
    /// parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: zero chunk size");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Scoped task spawning (subset of `rayon::scope`).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    std::thread::scope(f)
}

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{
        IndexedSource, IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_ordered() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn slice_par_iter() {
        let data: Vec<u64> = (0..500).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(doubled[499], 500);
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut buf = vec![0usize; 103];
        buf.par_chunks_mut(10).enumerate().for_each(|(b, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = b * 10 + i;
            }
        });
        assert!(buf.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn for_each_runs_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..777).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = (5..5).into_par_iter().collect();
        assert!(v.is_empty());
        let mut empty: Vec<u8> = Vec::new();
        empty.par_chunks_mut(4).for_each(|_| panic!("no chunks"));
    }
}
