//! Vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace vendors
//! the exact API surface it consumes: [`Rng`] (`gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++ seeded
//! via SplitMix64), and [`seq::SliceRandom::choose_multiple`]. Streams are
//! deterministic per seed — the property every simulation and test in this
//! repository relies on — but are **not** bit-compatible with upstream
//! `rand`; swapping the real crate back in changes sampled topologies and
//! traces, not correctness.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types of ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * unit_f64(rng)
    }
    fn is_empty_range(&self) -> bool {
        // NaN endpoints also count as empty.
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * unit_f64(rng)
    }
    fn is_empty_range(&self) -> bool {
        // NaN endpoints also count as empty.
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        assert!(!range.is_empty_range(), "gen_range: empty range");
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        unit_f64(self) < p
    }

    /// A sample from the type's standard distribution (`[0, 1)` for
    /// floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array in upstream rand; here `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Convenience seeding from a single `u64` (SplitMix64-expanded, like
    /// upstream `rand_core`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Named generators ([`rngs::SmallRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    /// Non-random generators for tests ([`mock::StepRng`]).
    pub mod mock {
        use crate::RngCore;

        /// A generator returning an arithmetic sequence (for deterministic
        /// tests).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// Starts at `initial`, advancing by `step` per draw.
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng {
                    value: initial,
                    step,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.step);
                v
            }
        }
    }
}

/// Sequence-related helpers ([`seq::SliceRandom`]).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Chooses `amount` distinct elements uniformly (in random order).
        /// Yields the whole slice (shuffled) when `amount >= len`.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Chooses one element uniformly, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + rng.gen_range(0..self.len() - i);
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: usize = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == c.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "different seeds produced near-identical streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1.0f64..=10.0);
            assert!((1.0..=10.0).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = SmallRng::seed_from_u64(9);
        let pool: Vec<u32> = (0..20).collect();
        let mut picked: Vec<u32> = pool.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 5, "choose_multiple repeated an element");
        // amount > len yields everything
        assert_eq!(pool.choose_multiple(&mut rng, 100).count(), 20);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
