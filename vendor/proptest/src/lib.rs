//! Vendored subset of the `proptest` API.
//!
//! The build environment has no network access, so this crate implements
//! the property-testing surface the workspace uses: the [`Strategy`] trait
//! with range, tuple and collection strategies plus `prop_map`, the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, and
//! [`test_runner::ProptestConfig`]. Inputs are drawn from a deterministic
//! per-test RNG (override the seed with `PROPTEST_SEED`). Failing cases
//! report the case number but are **not** shrunk.

#![deny(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `HashSet` of `size.start..size.end` distinct elements.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = HashSet::with_capacity(target);
            // The element domain may hold fewer than `target` distinct
            // values; bail out after a generous number of draws.
            for _ in 0..(target * 50 + 100) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Test-runner configuration (`proptest::test_runner`).
pub mod test_runner {
    /// How many random cases each property test runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Returns the base seed for a named property test: `PROPTEST_SEED` when
/// set, else a stable hash of the test name.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a condition inside a property test, reporting the formatted
/// message (and the failing case number, added by [`proptest!`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", a, b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                a, b, format!($($fmt)*)
            );
        }
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident
        ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $pat = ($strat).generate(&mut rng);
                    )*
                    {
                        $body
                    }
                }
            }
        )*
    };
}

/// `proptest::prelude` — the names tests import with `use
/// proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u64..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn hash_sets_distinct(s in prop::collection::hash_set(0usize..20, 1..5)) {
            prop_assert!((1..5).contains(&s.len()));
        }

        #[test]
        fn tuples_and_map(
            p in (1u32..4, 10u32..13).prop_map(|(a, b)| a * 100 + b)
        ) {
            let (a, b) = (p / 100, p % 100);
            prop_assert!((1..4).contains(&a));
            prop_assert_eq!(b / 10, 1);
        }
    }

    #[test]
    fn deterministic_seed() {
        assert_eq!(crate::base_seed("abc"), crate::base_seed("abc"));
        assert_ne!(crate::base_seed("abc"), crate::base_seed("abd"));
    }
}
