//! # flexserve
//!
//! A from-scratch Rust reproduction of *"On the Benefit of Virtualization:
//! Strategies for Flexible Server Allocation"* (Arora, Feldmann,
//! Schaffrath, Schmid — arXiv:1011.6594): online and offline strategies
//! that decide **how many** virtual servers to run, **where** to place
//! them, and **when** to migrate them as mobile demand shifts across a
//! substrate network.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `flexserve-graph` | substrate graphs, generators, shortest paths, metrics |
//! | [`topology`] | `flexserve-topology` | Rocketfuel parser, synthetic AS-7018-like substrate |
//! | [`workload`] | `flexserve-workload` | time-zones / commuter / on-off demand scenarios |
//! | [`sim`] | `flexserve-sim` | cost model, routing, server fleet, transition planner, game loop |
//! | [`core`] | `flexserve-core` | ONCONF, ONBR, ONTH, OPT, OFFBR, OFFTH, OFFSTAT |
//!
//! ## Quickstart
//!
//! ```
//! use flexserve::prelude::*;
//!
//! // 1. A substrate: 50-node Erdős–Rényi graph (1% connection probability).
//! let mut rng = SmallRng::seed_from_u64(7);
//! let g = erdos_renyi(50, 0.01, &GenConfig::default(), &mut rng).unwrap();
//! let matrix = DistanceMatrix::build(&g);
//!
//! // 2. Demand: commuters fanning out from the network center.
//! let mut scenario = CommuterScenario::new(&g, 8, 5, LoadVariant::Dynamic, 7);
//! let trace = record(&mut scenario, 100);
//!
//! // 3. Run the ONTH strategy and inspect its costs.
//! let ctx = SimContext::new(&g, &matrix, CostParams::default(), LoadModel::Linear);
//! let record = run_online(&ctx, &trace, &mut OnTh::new(), initial_center(&ctx));
//! println!("total cost: {}", record.total());
//! assert!(record.total().total() > 0.0);
//! ```

pub use flexserve_core as core;
pub use flexserve_graph as graph;
pub use flexserve_sim as sim;
pub use flexserve_topology as topology;
pub use flexserve_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use flexserve_graph::gen::{
        erdos_renyi, grid, line, random_geometric, random_tree, ring, star, unit_line, waxman,
        GenConfig,
    };
    pub use flexserve_graph::{Bandwidth, DistanceMatrix, Graph, NodeId};

    pub use flexserve_topology::{as7018_like, parse_rocketfuel_weights, As7018Config};

    pub use flexserve_workload::{
        record, CommuterScenario, LoadVariant, OnOffScenario, RoundRequests, Scenario,
        TimeZonesScenario, Trace, UniformScenario,
    };

    pub use flexserve_sim::{
        run_online, run_plan, CostBreakdown, CostParams, Fleet, LoadModel, OnlineStrategy, Plan,
        RunRecord, SimContext,
    };

    pub use flexserve_core::{
        competitive_ratio, initial_center, offstat, optimal_plan, OffBr, OffTh, OnBr, OnConf, OnTh,
        StaticStrategy, ThresholdMode,
    };

    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}
